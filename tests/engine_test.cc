// Serving-layer suite: RequestQueue semantics (admission control, deadline
// expiry, drain-on-close), EngineOptions as the single config path, and the
// Engine facade's contract that sync and async results are byte-identical
// to the direct SketchIndex/estimator calls at any thread count. The
// concurrency tests here also run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/request_queue.h"
#include "src/core/engine.h"
#include "src/core/estimators.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;

const int kThreadCounts[] = {1, 2, 7};

SketcherConfig BaseSketcher() {
  SketcherConfig c;
  c.k_override = 64;
  c.s_override = 8;
  c.epsilon = 2.0;
  c.projection_seed = kTestSeed;
  return c;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.sketcher = BaseSketcher();
  options.num_shards = 4;
  return options;
}

// ---------------------------------------------------------------------------
// RequestQueue

RequestQueue::Request QueueRequest(
    RequestQueue::Clock::time_point deadline,
    std::function<void(const Status&)> handler,
    Priority priority = Priority::kInteractive, std::string tenant = "") {
  RequestQueue::Request request;
  request.deadline = deadline;
  request.priority = priority;
  request.tenant = std::move(tenant);
  request.handler = std::move(handler);
  return request;
}

TEST(RequestQueueTest, ServesInFifoOrderWithOkBeforeDeadline) {
  RequestQueue queue(8);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue
                    .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                          [&order, i](const Status& status) {
                                            EXPECT_TRUE(status.ok()) << status;
                                            order.push_back(i);
                                          }))
                    .ok());
  }
  EXPECT_EQ(queue.size(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, TicketsAreStrictlyIncreasing) {
  RequestQueue queue(8);
  const auto noop = [](const Status&) {};
  RequestQueue::Ticket last = RequestQueue::kNoTicket;
  for (int i = 0; i < 3; ++i) {
    const auto ticket = queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop));
    ASSERT_TRUE(ticket.ok());
    EXPECT_GT(*ticket, last);
    last = *ticket;
  }
}

TEST(RequestQueueTest, ExpiredRequestFailsWithDeadlineExceeded) {
  RequestQueue queue(4);
  Status seen;
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(
                      RequestQueue::Clock::now() - std::chrono::milliseconds(1),
                      [&seen](const Status& status) { seen = status; }))
                  .ok());
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(seen.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.GetStats().deadline_misses, 1);
}

TEST(RequestQueueTest, FullQueueRefusesWithResourceExhaustedWithoutSideEffects) {
  RequestQueue queue(2);
  const auto noop = [](const Status&) {};
  ASSERT_TRUE(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop)).ok());
  ASSERT_TRUE(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop)).ok());
  bool refused_handler_ran = false;
  const auto refused = queue.TryPush(QueueRequest(
      RequestQueue::kNoDeadline,
      [&refused_handler_ran](const Status&) { refused_handler_ran = true; }));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(refused_handler_ran);
  EXPECT_EQ(queue.size(), 2);
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_TRUE(queue.ServeOne());
  const auto stats = queue.GetStats();
  EXPECT_EQ(stats.lane(Priority::kInteractive).refused, 1);
  EXPECT_EQ(stats.lane(Priority::kInteractive).served, 2);
}

TEST(RequestQueueTest, CloseStopsAdmissionsAndDrainsAcceptedWork) {
  RequestQueue queue(4);
  int served = 0;
  const auto count = [&served](const Status& status) {
    EXPECT_TRUE(status.ok());
    ++served;
  };
  ASSERT_TRUE(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, count)).ok());
  ASSERT_TRUE(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, count)).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, count))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_FALSE(queue.ServeOne());  // closed and drained
  EXPECT_EQ(served, 2);
}

TEST(RequestQueueTest, DestructorFailsRequestsNobodyServed) {
  Status seen;
  {
    RequestQueue queue(2);
    ASSERT_TRUE(
        queue
            .TryPush(QueueRequest(
                RequestQueue::kNoDeadline,
                [&seen](const Status& status) { seen = status; }))
            .ok());
  }
  EXPECT_EQ(seen.code(), StatusCode::kFailedPrecondition);
}

TEST(RequestQueueTest, StrictPriorityAcrossLanesFifoWithinALane) {
  RequestQueue queue(16);
  std::vector<std::string> order;
  const auto record = [&order](std::string tag) {
    return [&order, tag = std::move(tag)](const Status& status) {
      EXPECT_TRUE(status.ok()) << status;
      order.push_back(tag);
    };
  };
  // Admitted in "wrong" order on purpose: lanes, not arrival, decide.
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("e0"), Priority::kBestEffort))
                  .ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("b0"), Priority::kBatch))
                  .ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("i0"), Priority::kInteractive))
                  .ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("b1"), Priority::kBatch))
                  .ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("i1"), Priority::kInteractive))
                  .ok());
  while (queue.size() > 0) EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order,
            (std::vector<std::string>{"i0", "i1", "b0", "b1", "e0"}));
  const auto stats = queue.GetStats();
  EXPECT_EQ(stats.lane(Priority::kInteractive).served, 2);
  EXPECT_EQ(stats.lane(Priority::kBatch).served, 2);
  EXPECT_EQ(stats.lane(Priority::kBestEffort).served, 1);
}

TEST(RequestQueueTest, AgedLanePromotionLiftsStarvedRequestsOneLane) {
  // starvation_age = 1ms: after the sleep below, everything queued in the
  // lower lanes is promotable; without the knob they would sit behind a
  // sustained interactive stream forever.
  RequestQueue queue(16, /*tenant_quota=*/0,
                     /*starvation_age=*/std::chrono::milliseconds(1));
  std::vector<std::string> order;
  const auto record = [&order](std::string tag) {
    return [&order, tag = std::move(tag)](const Status& status) {
      EXPECT_TRUE(status.ok()) << status;
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("b0"), Priority::kBatch))
                  .ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("e0"), Priority::kBestEffort))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Fresh interactive arrival after the aged backlog.
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("i0"), Priority::kInteractive))
                  .ok());
  // First pop: b0 is promoted batch -> interactive (to the tail, so the
  // genuinely interactive i0 still wins) and e0 best-effort -> batch.
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order, (std::vector<std::string>{"i0"}));
  while (queue.size() > 0) EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order, (std::vector<std::string>{"i0", "b0", "e0"}));
  const auto stats = queue.GetStats();
  // Promotions are counted against the lane they escaped from, and the
  // age clock restarts on each hop — so e0's batch->interactive second
  // hop only happens if the pops themselves straddle the (tiny) age. The
  // serve itself lands on the lane the request was actually popped from.
  EXPECT_EQ(stats.lane(Priority::kBestEffort).promoted, 1);
  EXPECT_GE(stats.lane(Priority::kBatch).promoted, 1);  // b0, maybe e0 too
  EXPECT_LE(stats.lane(Priority::kBatch).promoted, 2);
  EXPECT_EQ(stats.lane(Priority::kBestEffort).served, 0);
  for (const auto& lane : stats.lanes) EXPECT_EQ(lane.depth, 0);
}

TEST(RequestQueueTest, NoPromotionWhenStarvationAgeDisabled) {
  RequestQueue queue(8);  // default: strict priority, no promotion
  std::vector<std::string> order;
  const auto record = [&order](std::string tag) {
    return [&order, tag = std::move(tag)](const Status& status) {
      EXPECT_TRUE(status.ok()) << status;
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("b0"), Priority::kBatch))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("i0"), Priority::kInteractive))
                  .ok());
  while (queue.size() > 0) EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order, (std::vector<std::string>{"i0", "b0"}));
  const auto stats = queue.GetStats();
  for (const auto& lane : stats.lanes) EXPECT_EQ(lane.promoted, 0);
  EXPECT_EQ(stats.lane(Priority::kBatch).served, 1);
}

TEST(RequestQueueTest, PromotionSkipsCancelledFrontsAndKeepsAccounting) {
  RequestQueue queue(8, /*tenant_quota=*/0,
                     /*starvation_age=*/std::chrono::milliseconds(1));
  std::vector<std::string> order;
  const auto record = [&order](std::string tag) {
    return [&order, tag = std::move(tag)](const Status&) {
      order.push_back(tag);
    };
  };
  const auto cancelled = queue.TryPush(QueueRequest(
      RequestQueue::kNoDeadline, record("dead"), Priority::kBatch));
  ASSERT_TRUE(cancelled.ok());
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        record("b1"), Priority::kBatch))
                  .ok());
  EXPECT_TRUE(queue.Cancel(*cancelled));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(queue.ServeOne());
  // The stale front was reclaimed, the live aged request promoted and
  // served; exactly one promotion counted.
  EXPECT_EQ(order, (std::vector<std::string>{"dead", "b1"}));
  const auto stats = queue.GetStats();
  EXPECT_EQ(stats.lane(Priority::kBatch).promoted, 1);
  EXPECT_EQ(stats.lane(Priority::kBatch).cancelled, 1);
  for (const auto& lane : stats.lanes) EXPECT_EQ(lane.depth, 0);
}

TEST(RequestQueueTest, TenantQuotaCountsQueuedAndInFlight) {
  RequestQueue queue(8, /*tenant_quota=*/1);
  const auto noop = [](const Status&) {};
  // While tenant-a's request runs (in flight, popped off the queue), the
  // tenant is still at quota; once ServeOne returns, the slot is free.
  Status while_in_flight;
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(
                      RequestQueue::kNoDeadline,
                      [&](const Status& status) {
                        EXPECT_TRUE(status.ok());
                        while_in_flight =
                            queue
                                .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                                      noop,
                                                      Priority::kInteractive,
                                                      "tenant-a"))
                                .status();
                      },
                      Priority::kInteractive, "tenant-a"))
                  .ok());
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(while_in_flight.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(
      queue
          .TryPush(QueueRequest(RequestQueue::kNoDeadline, noop,
                                Priority::kInteractive, "tenant-a"))
          .ok());
  EXPECT_TRUE(queue.ServeOne());
}

TEST(RequestQueueTest, TenantQuotaRefusesOnlyTheOverQuotaTenant) {
  RequestQueue queue(16, /*tenant_quota=*/2);
  const auto noop = [](const Status&) {};
  const auto push = [&queue, &noop](const std::string& tenant) {
    return queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop,
                                      Priority::kInteractive, tenant));
  };
  ASSERT_TRUE(push("alice").ok());
  ASSERT_TRUE(push("alice").ok());
  const auto refused = push("alice");
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Other tenants and unmetered requests are unaffected.
  EXPECT_TRUE(push("bob").ok());
  EXPECT_TRUE(push("").ok());
  const auto stats = queue.GetStats();
  EXPECT_EQ(stats.tenant_usage.at("alice"), 2);
  EXPECT_EQ(stats.tenant_usage.at("bob"), 1);
  EXPECT_EQ(stats.tenant_usage.count(""), 0u);
  EXPECT_EQ(stats.lane(Priority::kInteractive).refused, 1);
  while (queue.size() > 0) EXPECT_TRUE(queue.ServeOne());
  EXPECT_TRUE(queue.GetStats().tenant_usage.empty());
}

TEST(RequestQueueTest, TenantRateRefusesBeyondTheBurstAndRefills) {
  // rate 2/s means a burst bucket of 2 tokens, created full: two immediate
  // admissions, then refusal until the bucket refills.
  RequestQueue queue(64, /*tenant_quota=*/0, RequestQueue::Clock::duration::zero(),
                     /*tenant_rate=*/2);
  EXPECT_EQ(queue.tenant_rate(), 2);
  const auto noop = [](const Status&) {};
  const auto push = [&queue, &noop](const std::string& tenant) {
    return queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop,
                                      Priority::kInteractive, tenant));
  };
  ASSERT_TRUE(push("metered").ok());
  ASSERT_TRUE(push("metered").ok());
  const auto refused = push("metered");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("metered"), std::string::npos);
  EXPECT_NE(refused.status().message().find("rate"), std::string::npos);

  // Buckets are per tenant, and empty-tenant traffic is never metered.
  ASSERT_TRUE(push("other").ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(push("").ok());

  // Refill is continuous at the configured rate: ~0.6 s at 2/s earns at
  // least one token back.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(push("metered").ok());
  EXPECT_EQ(queue.GetStats().lane(Priority::kInteractive).refused, 1);
}

TEST(RequestQueueTest, TenantRateIsIndependentOfTenantQuota) {
  // Quota bounds concurrency (queued + in-flight, released on completion);
  // rate bounds throughput (admissions per second, never released). A
  // served-and-released request frees its quota slot but not its token.
  RequestQueue queue(64, /*tenant_quota=*/1, RequestQueue::Clock::duration::zero(),
                     /*tenant_rate=*/2);
  const auto noop = [](const Status&) {};
  const auto push = [&queue, &noop] {
    return queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop,
                                      Priority::kInteractive, "alice"));
  };
  ASSERT_TRUE(push().ok());
  // Second admission: under the rate burst (2), but over the quota (1).
  const auto over_quota = push();
  ASSERT_FALSE(over_quota.ok());
  EXPECT_NE(over_quota.status().message().find("quota"), std::string::npos);

  // Serving releases the quota slot, so the next push passes the quota
  // check — and consumes the second (last) token.
  ASSERT_TRUE(queue.ServeOne());
  queue.WaitIdle();
  ASSERT_TRUE(push().ok());
  ASSERT_TRUE(queue.ServeOne());
  queue.WaitIdle();

  // Quota slot free again, but the bucket is empty: the rate refuses now.
  const auto over_rate = push();
  ASSERT_FALSE(over_rate.ok());
  EXPECT_NE(over_rate.status().message().find("rate"), std::string::npos);
}

TEST(RequestQueueTest, CancelStormCompactsLaneAndQueueStaysServable) {
  // A cancel-heavy caller must not grow a lane without bound while other
  // lanes keep it from draining: stale tickets are compacted away once
  // they outnumber the live ones, and the lane stays fully servable.
  RequestQueue queue(1 << 12);
  const auto noop = [](const Status&) {};
  // A live interactive request sits queued the whole time, so nothing
  // ever pops (and lazily reclaims) the best-effort lane.
  ASSERT_TRUE(queue.TryPush(QueueRequest(RequestQueue::kNoDeadline, noop)).ok());
  for (int round = 0; round < 300; ++round) {
    const auto ticket = queue.TryPush(QueueRequest(
        RequestQueue::kNoDeadline, noop, Priority::kBestEffort));
    ASSERT_TRUE(ticket.ok());
    EXPECT_TRUE(queue.Cancel(*ticket));
  }
  auto stats = queue.GetStats();
  EXPECT_EQ(stats.lane(Priority::kBestEffort).cancelled, 300);
  EXPECT_EQ(stats.lane(Priority::kBestEffort).depth, 0);
  EXPECT_EQ(queue.size(), 1);
  // The lane still serves live work in order after the storm.
  int served = 0;
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        [&served](const Status& status) {
                                          EXPECT_TRUE(status.ok());
                                          ++served;
                                        },
                                        Priority::kBestEffort))
                  .ok());
  EXPECT_TRUE(queue.ServeOne());  // the interactive request
  EXPECT_TRUE(queue.ServeOne());  // the live best-effort request
  EXPECT_EQ(served, 1);
  queue.WaitIdle();  // idle queue: returns immediately
  EXPECT_EQ(queue.GetStats().lane(Priority::kBestEffort).served, 1);
}

TEST(RequestQueueTest, CancelQueuedRequestResolvesCancelledWithoutServing) {
  RequestQueue queue(8, /*tenant_quota=*/1);
  Status cancelled_status;
  const auto ticket = queue.TryPush(QueueRequest(
      RequestQueue::kNoDeadline,
      [&cancelled_status](const Status& status) { cancelled_status = status; },
      Priority::kInteractive, "carol"));
  ASSERT_TRUE(ticket.ok());
  int second_served = 0;
  ASSERT_TRUE(queue
                  .TryPush(QueueRequest(RequestQueue::kNoDeadline,
                                        [&second_served](const Status& status) {
                                          EXPECT_TRUE(status.ok());
                                          ++second_served;
                                        }))
                  .ok());
  EXPECT_TRUE(queue.Cancel(*ticket));
  EXPECT_EQ(cancelled_status.code(), StatusCode::kCancelled);
  // The cancelled request released carol's quota slot and its queue slot.
  EXPECT_EQ(queue.size(), 1);
  EXPECT_TRUE(queue.GetStats().tenant_usage.empty());
  // Cancelling again — or a ticket never issued — is a no-op.
  EXPECT_FALSE(queue.Cancel(*ticket));
  EXPECT_FALSE(queue.Cancel(RequestQueue::kNoTicket));
  EXPECT_FALSE(queue.Cancel(99999));
  // The lone remaining request is the uncancelled one.
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(second_served, 1);
  const auto stats = queue.GetStats();
  EXPECT_EQ(stats.lane(Priority::kInteractive).cancelled, 1);
  EXPECT_EQ(stats.lane(Priority::kInteractive).served, 1);
  EXPECT_EQ(stats.lane(Priority::kInteractive).depth, 0);
}

// ---------------------------------------------------------------------------
// EngineOptions: the one config path

TEST(EngineOptionsTest, ParseAppliesRecognizedKeysAndDeclaredPassthrough) {
  const std::map<std::string, std::string> flags = {
      {"epsilon", "4.5"},        {"delta", "1e-6"},
      {"alpha", "0.15"},         {"beta", "0.01"},
      {"seed", "12345"},         {"transform", "fjlt"},
      {"threads", "0"},          {"shards", "32"},
      {"serving-threads", "3"},  {"queue-capacity", "17"},
      {"tenant-quota", "9"},     {"tenant-rate", "50"},
      {"deadline-ms", "250"},    {"batch-grain", "24"},
      {"input", "tool-flag.csv"}};
  const auto options = EngineOptions::Parse(flags, /*passthrough=*/{"input"});
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_DOUBLE_EQ(options->sketcher.epsilon, 4.5);
  EXPECT_DOUBLE_EQ(options->sketcher.delta, 1e-6);
  EXPECT_DOUBLE_EQ(options->sketcher.alpha, 0.15);
  EXPECT_DOUBLE_EQ(options->sketcher.beta, 0.01);
  EXPECT_EQ(options->sketcher.projection_seed, 12345u);
  EXPECT_EQ(options->sketcher.transform, TransformKind::kFjlt);
  EXPECT_EQ(options->threads, 0);
  EXPECT_EQ(options->num_shards, 32);
  EXPECT_EQ(options->serving_threads, 3);
  EXPECT_EQ(options->queue_capacity, 17);
  EXPECT_EQ(options->tenant_quota, 9);
  EXPECT_EQ(options->tenant_rate, 50);
  EXPECT_EQ(options->default_deadline_ms, 250);
  EXPECT_EQ(options->batch_grain, 24);
}

TEST(EngineOptionsTest, ParseRejectsUnknownKeysUnlessPassedThrough) {
  // A typo'd engine flag must fail loudly, not be silently ignored.
  const auto typo = EngineOptions::Parse({{"epsilno", "2.0"}});
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(typo.status().message().find("epsilno"), std::string::npos)
      << typo.status();

  // Undeclared caller-specific keys are unknown too …
  EXPECT_FALSE(EngineOptions::Parse({{"input", "a.csv"}}).ok());
  // … and declaring one key does not whitelist the others.
  EXPECT_FALSE(
      EngineOptions::Parse({{"input", "a.csv"}, {"outptu", "b"}}, {"input"})
          .ok());
}

TEST(EngineOptionsTest, ParseRejectsMalformedOrOutOfDomainValues) {
  const std::vector<std::map<std::string, std::string>> bad = {
      {{"epsilon", "abc"}},        {{"epsilon", ""}},
      {{"threads", "-1"}},         {{"threads", "10000"}},
      {{"threads", "2x"}},         {{"threads", ""}},
      {{"shards", "0"}},           {{"shards", "1.5"}},
      {{"serving-threads", "0"}},  {{"queue-capacity", "0"}},
      {{"queue-capacity", "lots"}}, {{"tenant-quota", "-1"}},
      {{"tenant-quota", "many"}},  {{"tenant-rate", "-1"}},
      {{"tenant-rate", "fast"}},   {{"tenant-rate", "1048577"}},
      {{"deadline-ms", "-5"}},
      {{"transform", "bogus"}},    {{"seed", "-3"}},
      {{"k-override", "-1"}},      {{"noise", "cauchy"}},
      {{"placement", "sideways"}}, {{"batch-grain", "-1"}},
      {{"batch-grain", "1048577"}}, {{"batch-grain", "coarse"}}};
  for (const auto& flags : bad) {
    const auto options = EngineOptions::Parse(flags);
    EXPECT_FALSE(options.ok())
        << flags.begin()->first << "=" << flags.begin()->second;
    EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument)
        << flags.begin()->first;
    EXPECT_FALSE(options.status().message().empty());
  }
}

TEST(EngineOptionsTest, ToStringParseRoundTrip) {
  EngineOptions options;
  options.sketcher.transform = TransformKind::kFjlt;
  // Awkward decimals on purpose: the rendering must be bit-exact under
  // re-parsing, not merely 6-digit close.
  options.sketcher.alpha = 0.1234567891234567;
  options.sketcher.beta = 0.125;
  options.sketcher.k_override = 64;
  options.sketcher.s_override = 8;
  options.sketcher.epsilon = 1.0 / 3.0;
  options.sketcher.delta = 1e-9;
  options.sketcher.noise_selection = SketcherConfig::NoiseSelection::kGaussian;
  options.sketcher.placement = NoisePlacement::kPostHadamard;
  options.sketcher.projection_seed = 99;
  options.threads = 7;
  options.num_shards = 5;
  options.serving_threads = 4;
  options.queue_capacity = 33;
  options.tenant_quota = 3;
  options.tenant_rate = 6;
  options.default_deadline_ms = 1500;
  options.starvation_age_ms = 250;
  options.batch_grain = 40;

  // Re-read the canonical "--key=value ..." rendering through a flag map.
  std::map<std::string, std::string> flags;
  std::istringstream stream(options.ToString());
  std::string token;
  while (stream >> token) {
    ASSERT_EQ(token.rfind("--", 0), 0u) << token;
    const size_t eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    flags[token.substr(2, eq - 2)] = token.substr(eq + 1);
  }
  const auto parsed = EngineOptions::Parse(flags);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->sketcher.transform, options.sketcher.transform);
  EXPECT_DOUBLE_EQ(parsed->sketcher.alpha, options.sketcher.alpha);
  EXPECT_DOUBLE_EQ(parsed->sketcher.beta, options.sketcher.beta);
  EXPECT_EQ(parsed->sketcher.k_override, options.sketcher.k_override);
  EXPECT_EQ(parsed->sketcher.s_override, options.sketcher.s_override);
  EXPECT_DOUBLE_EQ(parsed->sketcher.epsilon, options.sketcher.epsilon);
  EXPECT_DOUBLE_EQ(parsed->sketcher.delta, options.sketcher.delta);
  EXPECT_EQ(parsed->sketcher.noise_selection, options.sketcher.noise_selection);
  EXPECT_EQ(parsed->sketcher.placement, options.sketcher.placement);
  EXPECT_EQ(parsed->sketcher.projection_seed, options.sketcher.projection_seed);
  EXPECT_EQ(parsed->threads, options.threads);
  EXPECT_EQ(parsed->num_shards, options.num_shards);
  EXPECT_EQ(parsed->serving_threads, options.serving_threads);
  EXPECT_EQ(parsed->queue_capacity, options.queue_capacity);
  EXPECT_EQ(parsed->tenant_quota, options.tenant_quota);
  EXPECT_EQ(parsed->tenant_rate, options.tenant_rate);
  EXPECT_EQ(parsed->default_deadline_ms, options.default_deadline_ms);
  EXPECT_EQ(parsed->starvation_age_ms, options.starvation_age_ms);
  EXPECT_EQ(parsed->batch_grain, options.batch_grain);
}

// ---------------------------------------------------------------------------
// Engine equivalence: the facade must add scheduling, never different math.

struct DirectReference {
  PrivateSketcher sketcher;
  SketchIndex index;
  std::vector<std::vector<double>> xs;
  PrivateSketch probe;
};

DirectReference MakeReference(int64_t n) {
  const int64_t d = 64;
  DirectReference ref{MakeSketcherOrDie(d, BaseSketcher()), SketchIndex(4), {},
                      PrivateSketch()};
  Rng rng(kTestSeed);
  for (int64_t i = 0; i < n; ++i) {
    ref.xs.push_back(DenseGaussianVector(d, 1.0, &rng));
    EXPECT_TRUE(ref.index
                    .Add("doc-" + std::to_string((i * 37) % 101),
                         ref.sketcher.Sketch(ref.xs.back(),
                                             500 + static_cast<uint64_t>(i)))
                    .ok());
  }
  ref.probe = ref.sketcher.Sketch(DenseGaussianVector(d, 1.0, &rng), 999);
  return ref;
}

void ExpectSameNeighbors(const std::vector<SketchIndex::Neighbor>& actual,
                         const std::vector<SketchIndex::Neighbor>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    EXPECT_EQ(actual[i].squared_distance, expected[i].squared_distance)
        << "rank " << i;
  }
}

std::unique_ptr<Engine> MakeEngineOrDie(int64_t d, const EngineOptions& options) {
  auto engine = Engine::Create(d, options);
  DPJL_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).value();
}

TEST(EngineTest, QueriesBitIdenticalToDirectIndexAcrossThreadCounts) {
  const DirectReference ref = MakeReference(41);
  const auto reference_nn = ref.index.NearestNeighbors(ref.probe, 7).value();
  const double radius = reference_nn.back().squared_distance;
  const auto reference_range = ref.index.RangeQuery(ref.probe, radius).value();
  const auto reference_matrix = ref.index.AllPairsDistances().value();

  for (int threads : kThreadCounts) {
    EngineOptions options = BaseOptions();
    options.threads = threads;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    // Same sketches, inserted through the facade.
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string((i * 37) % 101),
                                     ref.xs[i], 500 + static_cast<uint64_t>(i))
                      .ok());
    }
    // The engine's own sketching is byte-identical to the direct sketcher.
    EXPECT_EQ(engine->Sketch(ref.xs[0], 500).Serialize(),
              ref.sketcher.Sketch(ref.xs[0], 500).Serialize());

    ExpectSameNeighbors(engine->NearestNeighbors(ref.probe, 7).value(),
                        reference_nn);
    ExpectSameNeighbors(engine->RangeQuery(ref.probe, radius).value(),
                        reference_range);
    const auto matrix = engine->AllPairsDistances().value();
    EXPECT_EQ(matrix.ids, reference_matrix.ids);
    EXPECT_EQ(matrix.values, reference_matrix.values);

    const auto direct = ref.index.SquaredDistance("doc-0", "doc-37");
    const auto via_engine = engine->SquaredDistance("doc-0", "doc-37");
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_engine.ok());
    EXPECT_EQ(*via_engine, *direct);

    EXPECT_EQ(engine->SerializeIndex(), ref.index.Serialize());
  }
}

TEST(EngineTest, AsyncResultsByteIdenticalToSyncCalls) {
  const DirectReference ref = MakeReference(23);
  for (int threads : kThreadCounts) {
    EngineOptions options = BaseOptions();
    options.threads = threads;
    options.serving_threads = 3;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string((i * 37) % 101),
                                     ref.xs[i], 500 + static_cast<uint64_t>(i))
                      .ok());
    }

    const auto query_future = engine->SubmitQuery(ref.probe, 5);
    const auto estimate_future = engine->SubmitEstimate("doc-0", "doc-37");
    const auto sketch_future = engine->SubmitSketch(ref.xs[0], 4242);

    const auto async_nn = query_future.Get();
    ASSERT_TRUE(async_nn.ok()) << async_nn.status();
    ExpectSameNeighbors(*async_nn, engine->NearestNeighbors(ref.probe, 5).value());

    const auto async_estimate = estimate_future.Get();
    ASSERT_TRUE(async_estimate.ok()) << async_estimate.status();
    EXPECT_EQ(*async_estimate, engine->SquaredDistance("doc-0", "doc-37").value());

    const auto async_sketch = sketch_future.Get();
    ASSERT_TRUE(async_sketch.ok()) << async_sketch.status();
    EXPECT_EQ(async_sketch->Serialize(),
              ref.sketcher.Sketch(ref.xs[0], 4242).Serialize());
  }
}

TEST(EngineTest, SketchBatchHonorsBatchItemNoiseSeedContract) {
  const DirectReference ref = MakeReference(9);
  EngineOptions options = BaseOptions();
  options.threads = 3;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  const uint64_t base = 0xBA5E;
  const auto batch = engine->SketchBatch(ref.xs, base);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), ref.xs.size());
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    EXPECT_EQ(
        (*batch)[i].Serialize(),
        ref.sketcher
            .Sketch(ref.xs[i], BatchItemNoiseSeed(base, static_cast<int64_t>(i)))
            .Serialize());
  }
}

TEST(EngineTest, FromIndexServesDeserializedIndexAndRefusesSketching) {
  const DirectReference ref = MakeReference(17);
  auto decoded = SketchIndex::Deserialize(ref.index.Serialize());
  ASSERT_TRUE(decoded.ok());
  EngineOptions options = BaseOptions();
  options.threads = 2;
  auto engine = Engine::FromIndex(std::move(decoded).value(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_FALSE((*engine)->has_sketcher());

  ExpectSameNeighbors((*engine)->NearestNeighbors(ref.probe, 5).value(),
                      ref.index.NearestNeighbors(ref.probe, 5).value());

  const auto batch = (*engine)->SketchBatch(ref.xs, 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
  const auto sketch = (*engine)->SubmitSketch(ref.xs[0], 1).Get();
  ASSERT_FALSE(sketch.ok());
  EXPECT_EQ(sketch.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, HugeDeadlineBudgetMeansNoExpiryNotInstantExpiry) {
  // A deadline budget beyond what the clock can represent must saturate to
  // "never expires", not overflow into the past.
  const DirectReference ref = MakeReference(5);
  EngineOptions options = BaseOptions();
  options.default_deadline_ms = std::numeric_limits<int64_t>::max() / 2;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto result = engine->SubmitQuery(ref.probe, 3).Get();
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(EngineTest, NegativeBudgetIsExpiredOnArrival) {
  // The use-the-default sentinel is INT64_MIN precisely so that computed
  // negative budgets (total - elapsed, including the tempting -1) are a
  // caller's exhausted budget and fail even with idle serving lanes.
  const DirectReference ref = MakeReference(5);
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, BaseOptions());
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  for (const int64_t budget : {int64_t{-1}, int64_t{-7}}) {
    const auto expired = engine->SubmitQuery(ref.probe, 3, budget).Get();
    ASSERT_FALSE(expired.ok());
    EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded) << budget;
  }
}

TEST(EngineTest, SubmitEstimatePropagatesNotFound) {
  EngineOptions options = BaseOptions();
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  const auto estimate = engine->SubmitEstimate("nope", "also-nope").Get();
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Deadline and admission-control semantics under load. These stage the
// scenarios deterministically by parking the single serving lane on a gate
// task the test controls.

/// Parks one serving lane on a gate task; the constructor returns only
/// once the lane is provably busy. Open() reopens the lane.
struct LaneGate {
  std::promise<void> entered;
  std::promise<void> release;
  EngineFuture<bool> task;

  explicit LaneGate(Engine* engine) {
    std::shared_future<void> release_future(release.get_future());
    task = engine->SubmitTask([this, release_future] {
      entered.set_value();
      release_future.wait();
      return Status::OK();
    });
    entered.get_future().wait();
  }
  void Open() { release.set_value(); }
};

TEST(EngineTest, ExpiredQueuedRequestFailsWithoutStallingOthers) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  LaneGate gate(engine.get());

  const auto submit_time = RequestQueue::Clock::now();
  const auto doomed = engine->SubmitQuery(ref.probe, 3, /*deadline_ms=*/1);
  const auto patient =
      engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  // Let the 1 ms deadline lapse while both requests sit in the queue, then
  // reopen the lane.
  std::this_thread::sleep_until(submit_time + std::chrono::milliseconds(20));
  gate.Open();

  const auto doomed_result = doomed.Get();
  ASSERT_FALSE(doomed_result.ok());
  EXPECT_EQ(doomed_result.status().code(), StatusCode::kDeadlineExceeded);

  // The request behind the expired one is served normally and exactly.
  const auto patient_result = patient.Get();
  ASSERT_TRUE(patient_result.ok()) << patient_result.status();
  ExpectSameNeighbors(*patient_result, sync);
  EXPECT_TRUE(gate.task.Get().ok());
}

TEST(EngineTest, SaturatedQueueRejectsAtAdmissionWithoutStallingInFlight) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 2;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  LaneGate gate(engine.get());

  // Fill the queue behind the parked lane, then overflow it.
  const auto queued_a = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  const auto queued_b = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  const auto refused = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  // Admission control resolves the overflow future immediately — no waiting
  // on the stalled lane.
  EXPECT_TRUE(refused.Ready());
  const auto refused_result = refused.Get();
  ASSERT_FALSE(refused_result.ok());
  EXPECT_EQ(refused_result.status().code(), StatusCode::kResourceExhausted);

  gate.Open();
  for (const auto& accepted : {queued_a, queued_b}) {
    const auto result = accepted.Get();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameNeighbors(*result, sync);
  }
  EXPECT_TRUE(gate.task.Get().ok());
}

// ---------------------------------------------------------------------------
// Priority lanes, per-tenant quotas, cancellation, batched queries, stats.
// Scenarios are staged deterministically behind a gated single serving lane.

RequestOptions WithPriority(Priority priority, std::string tenant = "") {
  RequestOptions request;
  request.priority = priority;
  request.tenant = std::move(tenant);
  return request;
}

TEST(EngineTest, StrictPriorityOrderingUnderGatedLane) {
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 32;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);

  LaneGate gate(engine.get());

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto record = [&engine, &order_mutex, &order](
                          std::string tag, const RequestOptions& request) {
    return engine->SubmitTask(
        [&order_mutex, &order, tag = std::move(tag)] {
          std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(tag);
          return Status::OK();
        },
        request);
  };
  // Batch and best-effort work is admitted FIRST; the interactive requests
  // arriving after it must still complete first once the lane reopens.
  std::vector<EngineFuture<bool>> staged;
  staged.push_back(record("b0", WithPriority(Priority::kBatch)));
  staged.push_back(record("b1", WithPriority(Priority::kBatch)));
  staged.push_back(record("e0", WithPriority(Priority::kBestEffort)));
  staged.push_back(record("i0", WithPriority(Priority::kInteractive)));
  staged.push_back(record("i1", WithPriority(Priority::kInteractive)));
  gate.Open();
  for (const auto& future : staged) {
    const auto result = future.Get();
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_TRUE(gate.task.Get().ok());
  EXPECT_EQ(order, (std::vector<std::string>{"i0", "i1", "b0", "b1", "e0"}));
}

TEST(EngineTest, PerTenantQuotaRefusalWhileOtherTenantsProceed) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;
  options.tenant_quota = 2;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  LaneGate gate(engine.get());

  const auto alice = WithPriority(Priority::kInteractive, "alice");
  const auto alice_a = engine->SubmitQuery(ref.probe, 3, alice);
  const auto alice_b = engine->SubmitQuery(ref.probe, 3, alice);
  // alice is now at her quota of queued+in-flight requests; her third
  // submission is refused at admission — immediately, not after the lane.
  const auto alice_refused = engine->SubmitQuery(ref.probe, 3, alice);
  EXPECT_TRUE(alice_refused.Ready());
  const auto refused_result = alice_refused.Get();
  ASSERT_FALSE(refused_result.ok());
  EXPECT_EQ(refused_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused_result.status().message().find("alice"),
            std::string::npos)
      << refused_result.status();

  // Other tenants (and unmetered callers) proceed unaffected.
  const auto bob = engine->SubmitQuery(
      ref.probe, 3, WithPriority(Priority::kInteractive, "bob"));
  const auto unmetered = engine->SubmitQuery(ref.probe, 3);

  gate.Open();
  for (const auto& accepted : {alice_a, alice_b, bob, unmetered}) {
    const auto result = accepted.Get();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameNeighbors(*result, sync);
  }
  EXPECT_TRUE(gate.task.Get().ok());
}

TEST(EngineTest, CancelQueuedRequestResolvesCancelledWithoutOccupyingALane) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  LaneGate gate(engine.get());

  auto doomed = engine->SubmitQuery(ref.probe, 3);
  const auto patient = engine->SubmitQuery(ref.probe, 3);
  // Cancel resolves the future immediately, while the lane is still held —
  // the request never reaches a serving thread.
  EXPECT_TRUE(doomed.Cancel());
  EXPECT_TRUE(doomed.Ready());
  const auto cancelled_result = doomed.Get();
  ASSERT_FALSE(cancelled_result.ok());
  EXPECT_EQ(cancelled_result.status().code(), StatusCode::kCancelled);
  // Cancelling twice is a no-op.
  EXPECT_FALSE(doomed.Cancel());

  gate.Open();
  auto patient_result = patient.Get();
  ASSERT_TRUE(patient_result.ok()) << patient_result.status();
  ExpectSameNeighbors(*patient_result, sync);
  EXPECT_TRUE(gate.task.Get().ok());
  // A request that already ran cannot be cancelled.
  auto served = patient;
  EXPECT_FALSE(served.Cancel());
  EXPECT_EQ(engine->Stats().lane(Priority::kInteractive).cancelled, 1);
}

TEST(EngineTest, CancelTokenObservesItsFlagAndDefaultNeverCancels) {
  EXPECT_FALSE(CancelToken().Cancelled());
  std::atomic<bool> flag{false};
  CancelToken token(&flag);
  EXPECT_FALSE(token.Cancelled());
  flag.store(true);
  EXPECT_TRUE(token.Cancelled());
  // Copies observe the same flag.
  CancelToken copy = token;
  EXPECT_TRUE(copy.Cancelled());
}

TEST(EngineTest, CancelUnwindsAnInFlightCooperativeTask) {
  // Deterministic in-flight cancellation: the task holds a serving lane,
  // reports it started, then polls its CancelToken — exactly the contract
  // long scatter-gather queries honor between partition scans.
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);

  std::promise<void> started;
  auto future = engine->SubmitTask(
      [&started](const CancelToken& token) {
        started.set_value();
        while (!token.Cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Status::Cancelled("task observed a raised cancel token");
      },
      RequestOptions{});
  started.get_future().wait();

  // The request already left the queue, so Cancel() returns false — but it
  // raises the cooperative flag first, and the task unwinds with
  // kCancelled instead of running forever.
  EXPECT_FALSE(future.Cancel());
  const auto result = future.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  engine->WaitIdle();
}

TEST(EngineTest, CancelRacingAnInFlightQueryNeverCorruptsTheResult) {
  // Cancelling a query that may already be mid-scan resolves to exactly
  // one of two outcomes: the complete correct answer, or kCancelled —
  // never a partial merge.
  const DirectReference ref = MakeReference(17);
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, BaseOptions());
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto expected = engine->NearestNeighbors(ref.probe, 5).value();

  for (int round = 0; round < 20; ++round) {
    auto future = engine->SubmitQuery(ref.probe, 5);
    future.Cancel();
    const auto result = future.Get();
    if (result.ok()) {
      ExpectSameNeighbors(*result, expected);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status();
    }
  }
  engine->WaitIdle();
}

TEST(EngineTest, SubmitQueryBatchByteIdenticalToIndividualSubmits) {
  const DirectReference ref = MakeReference(23);
  std::vector<PrivateSketch> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        ref.sketcher.Sketch(ref.xs[static_cast<size_t>(i)],
                            1000 + static_cast<uint64_t>(i)));
  }
  for (int threads : kThreadCounts) {
    EngineOptions options = BaseOptions();
    options.threads = threads;
    options.serving_threads = 2;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string((i * 37) % 101),
                                     ref.xs[i], 500 + static_cast<uint64_t>(i))
                      .ok());
    }
    const auto batched =
        engine->SubmitQueryBatch(queries, 7, WithPriority(Priority::kBatch))
            .Get();
    ASSERT_TRUE(batched.ok()) << batched.status();
    ASSERT_EQ(batched->size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto individual = engine->SubmitQuery(queries[i], 7).Get();
      ASSERT_TRUE(individual.ok()) << individual.status();
      ExpectSameNeighbors((*batched)[i], *individual);
    }
    // Edge cases ride the same path: empty batch, invalid top_n.
    const auto empty = engine->SubmitQueryBatch({}, 7).Get();
    ASSERT_TRUE(empty.ok()) << empty.status();
    EXPECT_TRUE(empty->empty());
    const auto invalid = engine->SubmitQueryBatch(queries, 0).Get();
    ASSERT_FALSE(invalid.ok());
    EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(EngineTest, StatsCountersConsistentWithStagedOutcomes) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;  // roomy: the refusal below is quota, not capacity
  options.tenant_quota = 1;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  // A fresh engine reports a quiet scheduler and the index it carries.
  const EngineStats fresh = engine->Stats();
  for (int lane = 0; lane < kNumPriorityLanes; ++lane) {
    const auto& counters = fresh.queue.lanes[static_cast<size_t>(lane)];
    EXPECT_EQ(counters.depth, 0);
    EXPECT_EQ(counters.served, 0);
    EXPECT_EQ(counters.expired, 0);
    EXPECT_EQ(counters.refused, 0);
    EXPECT_EQ(counters.cancelled, 0);
  }
  EXPECT_EQ(fresh.queue.deadline_misses, 0);
  EXPECT_EQ(fresh.index_size, 11);

  LaneGate gate(engine.get());

  // Stage one of each outcome behind the held lane (quota 1):
  const auto submit_time = RequestQueue::Clock::now();
  const auto doomed = engine->SubmitQuery(ref.probe, 3, /*deadline_ms=*/1);
  auto cancelme = engine->SubmitQuery(ref.probe, 3);
  EXPECT_TRUE(cancelme.Cancel());
  const auto alice_served = engine->SubmitQuery(
      ref.probe, 3, WithPriority(Priority::kInteractive, "alice"));
  auto alice_quota_refused = engine->SubmitQuery(
      ref.probe, 3, WithPriority(Priority::kBatch, "alice"));
  EXPECT_TRUE(alice_quota_refused.Ready());
  const auto quota_result = alice_quota_refused.Get();
  EXPECT_EQ(quota_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(quota_result.status().message().find("quota"), std::string::npos)
      << quota_result.status();
  // A refused request never got a ticket; Cancel has nothing to do.
  EXPECT_FALSE(alice_quota_refused.Cancel());

  // Mid-flight depth: the interactive lane holds doomed + alice's query.
  const EngineStats gated = engine->Stats();
  EXPECT_EQ(gated.lane(Priority::kInteractive).depth, 2);
  EXPECT_EQ(gated.queue.tenant_usage.at("alice"), 1);

  // Let doomed's deadline lapse in the queue, then reopen the lane.
  std::this_thread::sleep_until(submit_time + std::chrono::milliseconds(20));
  gate.Open();

  EXPECT_EQ(doomed.Get().status().code(), StatusCode::kDeadlineExceeded);
  const auto alice_result = alice_served.Get();
  ASSERT_TRUE(alice_result.ok()) << alice_result.status();
  ExpectSameNeighbors(*alice_result, sync);
  EXPECT_TRUE(gate.task.Get().ok());

  // Quota slots release just after the future resolves; WaitIdle blocks
  // until the serving thread finished that bookkeeping, so the audit
  // below is deterministic.
  engine->WaitIdle();
  const EngineStats stats = engine->Stats();
  const auto& interactive = stats.lane(Priority::kInteractive);
  EXPECT_EQ(interactive.served, 2);     // the gate + alice's query
  EXPECT_EQ(interactive.expired, 1);    // doomed
  EXPECT_EQ(interactive.refused, 0);
  EXPECT_EQ(interactive.cancelled, 1);  // cancelme
  EXPECT_EQ(interactive.depth, 0);
  const auto& batch = stats.lane(Priority::kBatch);
  EXPECT_EQ(batch.refused, 1);  // alice's over-quota submission
  EXPECT_EQ(batch.served, 0);
  const auto& best_effort = stats.lane(Priority::kBestEffort);
  EXPECT_EQ(best_effort.served + best_effort.refused + best_effort.expired +
                best_effort.cancelled + best_effort.depth,
            0);
  EXPECT_EQ(stats.queue.deadline_misses, 1);
  EXPECT_TRUE(stats.queue.tenant_usage.empty());
  EXPECT_EQ(stats.index_size, 11);
}

TEST(EngineTest, ConcurrentSubmittersAndInsertsAllResolve) {
  const int64_t d = 64;
  EngineOptions options = BaseOptions();
  options.threads = 2;
  options.serving_threads = 3;
  options.queue_capacity = 1024;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(d, options);
  Rng rng(kTestSeed);
  std::vector<std::vector<double>> xs;
  for (int64_t i = 0; i < 32; ++i) {
    xs.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("seed-" + std::to_string(i),
                                   xs[static_cast<size_t>(i)],
                                   100 + static_cast<uint64_t>(i))
                    .ok());
  }
  const PrivateSketch probe = engine->Sketch(xs[0], 999);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&engine, &probe, &failures] {
      std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> pending;
      pending.reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        pending.push_back(engine->SubmitQuery(probe, 5));
      }
      for (auto& future : pending) {
        const auto result = future.Get();
        if (!result.ok() || result->size() > 5 || result->empty()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Grow the corpus while the clients hammer the query path.
  std::thread inserter([&engine, &xs] {
    for (int64_t i = 16; i < 32; ++i) {
      const Status added =
          engine->InsertVector("grow-" + std::to_string(i),
                               xs[static_cast<size_t>(i)],
                               200 + static_cast<uint64_t>(i));
      DPJL_CHECK(added.ok(), added.ToString());
    }
  });
  for (std::thread& client : clients) client.join();
  inserter.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->index_size(), 32);
  EXPECT_EQ(engine->ids().size(), 32u);
}

TEST(EngineTest, DestructorDrainsAcceptedRequests) {
  const DirectReference ref = MakeReference(11);
  std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> pending;
  {
    EngineOptions options = BaseOptions();
    options.serving_threads = 2;
    options.queue_capacity = 64;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                     500 + static_cast<uint64_t>(i))
                      .ok());
    }
    for (int i = 0; i < 20; ++i) {
      pending.push_back(engine->SubmitQuery(ref.probe, 3));
    }
    // Engine destroyed here: accepted requests are drained, not dropped.
  }
  for (const auto& future : pending) {
    ASSERT_TRUE(future.Ready());
    const auto result = future.Get();
    EXPECT_TRUE(result.ok()) << result.status();
  }
}

TEST(EngineTest, StarvationAgePromotesGatedBatchWork) {
  // EngineOptions::starvation_age_ms must reach the queue: with a 1ms age
  // and a gated lane, the batch request admitted first has aged past the
  // threshold by the time the lane reopens, so it is served from the
  // interactive lane and counted as promoted out of batch.
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;
  options.starvation_age_ms = 1;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);

  LaneGate gate(engine.get());
  const auto batch = engine->SubmitTask([] { return Status::OK(); },
                                        WithPriority(Priority::kBatch));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  EXPECT_TRUE(gate.task.Get().ok());
  EXPECT_TRUE(batch.Get().ok());
  engine->WaitIdle();
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.lane(Priority::kBatch).promoted, 1);
  EXPECT_EQ(stats.lane(Priority::kBatch).served, 0);
}

TEST(EngineTest, StatsDeltaSubtractsCountersAndKeepsGauges) {
  DirectReference ref = MakeReference(9);
  EngineOptions options = BaseOptions();
  auto built = Engine::FromIndex(std::move(ref.index), options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Engine> engine = std::move(built).value();

  ASSERT_TRUE(engine->SubmitQuery(ref.probe, 3).Get().ok());
  ASSERT_TRUE(engine->SubmitQuery(ref.probe, 3).Get().ok());
  engine->WaitIdle();
  const EngineStats before = engine->Stats();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine->SubmitQuery(ref.probe, 3).Get().ok());
  }
  engine->WaitIdle();
  const EngineStats after = engine->Stats();

  const EngineStats delta = after.Delta(before);
  // Counters report the movement of the interval...
  EXPECT_EQ(delta.lane(Priority::kInteractive).served, 3);
  EXPECT_EQ(delta.queue.deadline_misses, 0);
  // ...while gauges keep their current values.
  EXPECT_EQ(delta.index_size, 9);
  EXPECT_EQ(delta.lane(Priority::kInteractive).depth, 0);
  // Delta against itself zeroes every counter but still renders cleanly.
  const std::string rendered = after.Delta(after).ToString();
  EXPECT_NE(rendered.find("lane.interactive.served\t0"), std::string::npos);
  EXPECT_NE(rendered.find("lane.batch.promoted\t0"), std::string::npos);
}

}  // namespace
}  // namespace dpjl
