// Serving-layer suite: RequestQueue semantics (admission control, deadline
// expiry, drain-on-close), EngineOptions as the single config path, and the
// Engine facade's contract that sync and async results are byte-identical
// to the direct SketchIndex/estimator calls at any thread count. The
// concurrency tests here also run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/request_queue.h"
#include "src/core/engine.h"
#include "src/core/estimators.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;

const int kThreadCounts[] = {1, 2, 7};

SketcherConfig BaseSketcher() {
  SketcherConfig c;
  c.k_override = 64;
  c.s_override = 8;
  c.epsilon = 2.0;
  c.projection_seed = kTestSeed;
  return c;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.sketcher = BaseSketcher();
  options.num_shards = 4;
  return options;
}

// ---------------------------------------------------------------------------
// RequestQueue

TEST(RequestQueueTest, ServesInFifoOrderWithOkBeforeDeadline) {
  RequestQueue queue(8);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue
                    .TryPush({RequestQueue::kNoDeadline,
                              [&order, i](const Status& status) {
                                EXPECT_TRUE(status.ok()) << status;
                                order.push_back(i);
                              }})
                    .ok());
  }
  EXPECT_EQ(queue.size(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueueTest, ExpiredRequestFailsWithDeadlineExceeded) {
  RequestQueue queue(4);
  Status seen;
  ASSERT_TRUE(queue
                  .TryPush({RequestQueue::Clock::now() -
                                std::chrono::milliseconds(1),
                            [&seen](const Status& status) { seen = status; }})
                  .ok());
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_EQ(seen.code(), StatusCode::kDeadlineExceeded);
}

TEST(RequestQueueTest, FullQueueRefusesWithResourceExhaustedWithoutSideEffects) {
  RequestQueue queue(2);
  const auto noop = [](const Status&) {};
  ASSERT_TRUE(queue.TryPush({RequestQueue::kNoDeadline, noop}).ok());
  ASSERT_TRUE(queue.TryPush({RequestQueue::kNoDeadline, noop}).ok());
  bool refused_handler_ran = false;
  const Status refused = queue.TryPush(
      {RequestQueue::kNoDeadline,
       [&refused_handler_ran](const Status&) { refused_handler_ran = true; }});
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(refused_handler_ran);
  EXPECT_EQ(queue.size(), 2);
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_TRUE(queue.ServeOne());
}

TEST(RequestQueueTest, CloseStopsAdmissionsAndDrainsAcceptedWork) {
  RequestQueue queue(4);
  int served = 0;
  const auto count = [&served](const Status& status) {
    EXPECT_TRUE(status.ok());
    ++served;
  };
  ASSERT_TRUE(queue.TryPush({RequestQueue::kNoDeadline, count}).ok());
  ASSERT_TRUE(queue.TryPush({RequestQueue::kNoDeadline, count}).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush({RequestQueue::kNoDeadline, count}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_TRUE(queue.ServeOne());
  EXPECT_FALSE(queue.ServeOne());  // closed and drained
  EXPECT_EQ(served, 2);
}

TEST(RequestQueueTest, DestructorFailsRequestsNobodyServed) {
  Status seen;
  {
    RequestQueue queue(2);
    ASSERT_TRUE(queue
                    .TryPush({RequestQueue::kNoDeadline,
                              [&seen](const Status& status) { seen = status; }})
                    .ok());
  }
  EXPECT_EQ(seen.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// EngineOptions: the one config path

TEST(EngineOptionsTest, ParseAppliesRecognizedKeysAndIgnoresOthers) {
  const std::map<std::string, std::string> flags = {
      {"epsilon", "4.5"},        {"delta", "1e-6"},
      {"alpha", "0.15"},         {"beta", "0.01"},
      {"seed", "12345"},         {"transform", "fjlt"},
      {"threads", "0"},          {"shards", "32"},
      {"serving-threads", "3"},  {"queue-capacity", "17"},
      {"deadline-ms", "250"},    {"input", "ignored-tool-flag.csv"}};
  const auto options = EngineOptions::Parse(flags);
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_DOUBLE_EQ(options->sketcher.epsilon, 4.5);
  EXPECT_DOUBLE_EQ(options->sketcher.delta, 1e-6);
  EXPECT_DOUBLE_EQ(options->sketcher.alpha, 0.15);
  EXPECT_DOUBLE_EQ(options->sketcher.beta, 0.01);
  EXPECT_EQ(options->sketcher.projection_seed, 12345u);
  EXPECT_EQ(options->sketcher.transform, TransformKind::kFjlt);
  EXPECT_EQ(options->threads, 0);
  EXPECT_EQ(options->num_shards, 32);
  EXPECT_EQ(options->serving_threads, 3);
  EXPECT_EQ(options->queue_capacity, 17);
  EXPECT_EQ(options->default_deadline_ms, 250);
}

TEST(EngineOptionsTest, ParseRejectsMalformedOrOutOfDomainValues) {
  const std::vector<std::map<std::string, std::string>> bad = {
      {{"epsilon", "abc"}},        {{"threads", "-1"}},
      {{"threads", "10000"}},      {{"shards", "0"}},
      {{"serving-threads", "0"}},  {{"queue-capacity", "0"}},
      {{"deadline-ms", "-5"}},     {{"transform", "bogus"}},
      {{"seed", "-3"}},            {{"k-override", "-1"}},
      {{"noise", "cauchy"}},       {{"placement", "sideways"}}};
  for (const auto& flags : bad) {
    const auto options = EngineOptions::Parse(flags);
    EXPECT_FALSE(options.ok()) << flags.begin()->first;
    EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument)
        << flags.begin()->first;
  }
}

TEST(EngineOptionsTest, ToStringParseRoundTrip) {
  EngineOptions options;
  options.sketcher.transform = TransformKind::kFjlt;
  // Awkward decimals on purpose: the rendering must be bit-exact under
  // re-parsing, not merely 6-digit close.
  options.sketcher.alpha = 0.1234567891234567;
  options.sketcher.beta = 0.125;
  options.sketcher.k_override = 64;
  options.sketcher.s_override = 8;
  options.sketcher.epsilon = 1.0 / 3.0;
  options.sketcher.delta = 1e-9;
  options.sketcher.noise_selection = SketcherConfig::NoiseSelection::kGaussian;
  options.sketcher.placement = NoisePlacement::kPostHadamard;
  options.sketcher.projection_seed = 99;
  options.threads = 7;
  options.num_shards = 5;
  options.serving_threads = 4;
  options.queue_capacity = 33;
  options.default_deadline_ms = 1500;

  // Re-read the canonical "--key=value ..." rendering through a flag map.
  std::map<std::string, std::string> flags;
  std::istringstream stream(options.ToString());
  std::string token;
  while (stream >> token) {
    ASSERT_EQ(token.rfind("--", 0), 0u) << token;
    const size_t eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    flags[token.substr(2, eq - 2)] = token.substr(eq + 1);
  }
  const auto parsed = EngineOptions::Parse(flags);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->sketcher.transform, options.sketcher.transform);
  EXPECT_DOUBLE_EQ(parsed->sketcher.alpha, options.sketcher.alpha);
  EXPECT_DOUBLE_EQ(parsed->sketcher.beta, options.sketcher.beta);
  EXPECT_EQ(parsed->sketcher.k_override, options.sketcher.k_override);
  EXPECT_EQ(parsed->sketcher.s_override, options.sketcher.s_override);
  EXPECT_DOUBLE_EQ(parsed->sketcher.epsilon, options.sketcher.epsilon);
  EXPECT_DOUBLE_EQ(parsed->sketcher.delta, options.sketcher.delta);
  EXPECT_EQ(parsed->sketcher.noise_selection, options.sketcher.noise_selection);
  EXPECT_EQ(parsed->sketcher.placement, options.sketcher.placement);
  EXPECT_EQ(parsed->sketcher.projection_seed, options.sketcher.projection_seed);
  EXPECT_EQ(parsed->threads, options.threads);
  EXPECT_EQ(parsed->num_shards, options.num_shards);
  EXPECT_EQ(parsed->serving_threads, options.serving_threads);
  EXPECT_EQ(parsed->queue_capacity, options.queue_capacity);
  EXPECT_EQ(parsed->default_deadline_ms, options.default_deadline_ms);
}

// ---------------------------------------------------------------------------
// Engine equivalence: the facade must add scheduling, never different math.

struct DirectReference {
  PrivateSketcher sketcher;
  SketchIndex index;
  std::vector<std::vector<double>> xs;
  PrivateSketch probe;
};

DirectReference MakeReference(int64_t n) {
  const int64_t d = 64;
  DirectReference ref{MakeSketcherOrDie(d, BaseSketcher()), SketchIndex(4), {},
                      PrivateSketch()};
  Rng rng(kTestSeed);
  for (int64_t i = 0; i < n; ++i) {
    ref.xs.push_back(DenseGaussianVector(d, 1.0, &rng));
    EXPECT_TRUE(ref.index
                    .Add("doc-" + std::to_string((i * 37) % 101),
                         ref.sketcher.Sketch(ref.xs.back(),
                                             500 + static_cast<uint64_t>(i)))
                    .ok());
  }
  ref.probe = ref.sketcher.Sketch(DenseGaussianVector(d, 1.0, &rng), 999);
  return ref;
}

void ExpectSameNeighbors(const std::vector<SketchIndex::Neighbor>& actual,
                         const std::vector<SketchIndex::Neighbor>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    EXPECT_EQ(actual[i].squared_distance, expected[i].squared_distance)
        << "rank " << i;
  }
}

std::unique_ptr<Engine> MakeEngineOrDie(int64_t d, const EngineOptions& options) {
  auto engine = Engine::Create(d, options);
  DPJL_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).value();
}

TEST(EngineTest, QueriesBitIdenticalToDirectIndexAcrossThreadCounts) {
  const DirectReference ref = MakeReference(41);
  const auto reference_nn = ref.index.NearestNeighbors(ref.probe, 7).value();
  const double radius = reference_nn.back().squared_distance;
  const auto reference_range = ref.index.RangeQuery(ref.probe, radius).value();
  const auto reference_matrix = ref.index.AllPairsDistances().value();

  for (int threads : kThreadCounts) {
    EngineOptions options = BaseOptions();
    options.threads = threads;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    // Same sketches, inserted through the facade.
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string((i * 37) % 101),
                                     ref.xs[i], 500 + static_cast<uint64_t>(i))
                      .ok());
    }
    // The engine's own sketching is byte-identical to the direct sketcher.
    EXPECT_EQ(engine->Sketch(ref.xs[0], 500).Serialize(),
              ref.sketcher.Sketch(ref.xs[0], 500).Serialize());

    ExpectSameNeighbors(engine->NearestNeighbors(ref.probe, 7).value(),
                        reference_nn);
    ExpectSameNeighbors(engine->RangeQuery(ref.probe, radius).value(),
                        reference_range);
    const auto matrix = engine->AllPairsDistances().value();
    EXPECT_EQ(matrix.ids, reference_matrix.ids);
    EXPECT_EQ(matrix.values, reference_matrix.values);

    const auto direct = ref.index.SquaredDistance("doc-0", "doc-37");
    const auto via_engine = engine->SquaredDistance("doc-0", "doc-37");
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_engine.ok());
    EXPECT_EQ(*via_engine, *direct);

    EXPECT_EQ(engine->SerializeIndex(), ref.index.Serialize());
  }
}

TEST(EngineTest, AsyncResultsByteIdenticalToSyncCalls) {
  const DirectReference ref = MakeReference(23);
  for (int threads : kThreadCounts) {
    EngineOptions options = BaseOptions();
    options.threads = threads;
    options.serving_threads = 3;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string((i * 37) % 101),
                                     ref.xs[i], 500 + static_cast<uint64_t>(i))
                      .ok());
    }

    const auto query_future = engine->SubmitQuery(ref.probe, 5);
    const auto estimate_future = engine->SubmitEstimate("doc-0", "doc-37");
    const auto sketch_future = engine->SubmitSketch(ref.xs[0], 4242);

    const auto async_nn = query_future.Get();
    ASSERT_TRUE(async_nn.ok()) << async_nn.status();
    ExpectSameNeighbors(*async_nn, engine->NearestNeighbors(ref.probe, 5).value());

    const auto async_estimate = estimate_future.Get();
    ASSERT_TRUE(async_estimate.ok()) << async_estimate.status();
    EXPECT_EQ(*async_estimate, engine->SquaredDistance("doc-0", "doc-37").value());

    const auto async_sketch = sketch_future.Get();
    ASSERT_TRUE(async_sketch.ok()) << async_sketch.status();
    EXPECT_EQ(async_sketch->Serialize(),
              ref.sketcher.Sketch(ref.xs[0], 4242).Serialize());
  }
}

TEST(EngineTest, SketchBatchHonorsBatchItemNoiseSeedContract) {
  const DirectReference ref = MakeReference(9);
  EngineOptions options = BaseOptions();
  options.threads = 3;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  const uint64_t base = 0xBA5E;
  const auto batch = engine->SketchBatch(ref.xs, base);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), ref.xs.size());
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    EXPECT_EQ(
        (*batch)[i].Serialize(),
        ref.sketcher
            .Sketch(ref.xs[i], BatchItemNoiseSeed(base, static_cast<int64_t>(i)))
            .Serialize());
  }
}

TEST(EngineTest, FromIndexServesDeserializedIndexAndRefusesSketching) {
  const DirectReference ref = MakeReference(17);
  auto decoded = SketchIndex::Deserialize(ref.index.Serialize());
  ASSERT_TRUE(decoded.ok());
  EngineOptions options = BaseOptions();
  options.threads = 2;
  auto engine = Engine::FromIndex(std::move(decoded).value(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_FALSE((*engine)->has_sketcher());

  ExpectSameNeighbors((*engine)->NearestNeighbors(ref.probe, 5).value(),
                      ref.index.NearestNeighbors(ref.probe, 5).value());

  const auto batch = (*engine)->SketchBatch(ref.xs, 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
  const auto sketch = (*engine)->SubmitSketch(ref.xs[0], 1).Get();
  ASSERT_FALSE(sketch.ok());
  EXPECT_EQ(sketch.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, HugeDeadlineBudgetMeansNoExpiryNotInstantExpiry) {
  // A deadline budget beyond what the clock can represent must saturate to
  // "never expires", not overflow into the past.
  const DirectReference ref = MakeReference(5);
  EngineOptions options = BaseOptions();
  options.default_deadline_ms = std::numeric_limits<int64_t>::max() / 2;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto result = engine->SubmitQuery(ref.probe, 3).Get();
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(EngineTest, NegativeBudgetIsExpiredOnArrival) {
  // The use-the-default sentinel is INT64_MIN precisely so that computed
  // negative budgets (total - elapsed, including the tempting -1) are a
  // caller's exhausted budget and fail even with idle serving lanes.
  const DirectReference ref = MakeReference(5);
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, BaseOptions());
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  for (const int64_t budget : {int64_t{-1}, int64_t{-7}}) {
    const auto expired = engine->SubmitQuery(ref.probe, 3, budget).Get();
    ASSERT_FALSE(expired.ok());
    EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded) << budget;
  }
}

TEST(EngineTest, SubmitEstimatePropagatesNotFound) {
  EngineOptions options = BaseOptions();
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  const auto estimate = engine->SubmitEstimate("nope", "also-nope").Get();
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Deadline and admission-control semantics under load. These stage the
// scenarios deterministically by parking the single serving lane on a gate
// task the test controls.

TEST(EngineTest, ExpiredQueuedRequestFailsWithoutStallingOthers) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 16;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  const auto gate = engine->SubmitTask([&entered, release_future] {
    entered.set_value();
    release_future.wait();
    return Status::OK();
  });
  entered.get_future().wait();  // the lane is now provably busy

  const auto submit_time = RequestQueue::Clock::now();
  const auto doomed = engine->SubmitQuery(ref.probe, 3, /*deadline_ms=*/1);
  const auto patient =
      engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  // Let the 1 ms deadline lapse while both requests sit in the queue, then
  // reopen the lane.
  std::this_thread::sleep_until(submit_time + std::chrono::milliseconds(20));
  release.set_value();

  const auto doomed_result = doomed.Get();
  ASSERT_FALSE(doomed_result.ok());
  EXPECT_EQ(doomed_result.status().code(), StatusCode::kDeadlineExceeded);

  // The request behind the expired one is served normally and exactly.
  const auto patient_result = patient.Get();
  ASSERT_TRUE(patient_result.ok()) << patient_result.status();
  ExpectSameNeighbors(*patient_result, sync);
  EXPECT_TRUE(gate.Get().ok());
}

TEST(EngineTest, SaturatedQueueRejectsAtAdmissionWithoutStallingInFlight) {
  const DirectReference ref = MakeReference(11);
  EngineOptions options = BaseOptions();
  options.serving_threads = 1;
  options.queue_capacity = 2;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
  for (size_t i = 0; i < ref.xs.size(); ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                   500 + static_cast<uint64_t>(i))
                    .ok());
  }
  const auto sync = engine->NearestNeighbors(ref.probe, 3).value();

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  const auto gate = engine->SubmitTask([&entered, release_future] {
    entered.set_value();
    release_future.wait();
    return Status::OK();
  });
  entered.get_future().wait();

  // Fill the queue behind the parked lane, then overflow it.
  const auto queued_a = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  const auto queued_b = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  const auto refused = engine->SubmitQuery(ref.probe, 3, Engine::kNoDeadline);
  // Admission control resolves the overflow future immediately — no waiting
  // on the stalled lane.
  EXPECT_TRUE(refused.Ready());
  const auto refused_result = refused.Get();
  ASSERT_FALSE(refused_result.ok());
  EXPECT_EQ(refused_result.status().code(), StatusCode::kResourceExhausted);

  release.set_value();
  for (const auto& accepted : {queued_a, queued_b}) {
    const auto result = accepted.Get();
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameNeighbors(*result, sync);
  }
  EXPECT_TRUE(gate.Get().ok());
}

TEST(EngineTest, ConcurrentSubmittersAndInsertsAllResolve) {
  const int64_t d = 64;
  EngineOptions options = BaseOptions();
  options.threads = 2;
  options.serving_threads = 3;
  options.queue_capacity = 1024;
  std::unique_ptr<Engine> engine = MakeEngineOrDie(d, options);
  Rng rng(kTestSeed);
  std::vector<std::vector<double>> xs;
  for (int64_t i = 0; i < 32; ++i) {
    xs.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine
                    ->InsertVector("seed-" + std::to_string(i),
                                   xs[static_cast<size_t>(i)],
                                   100 + static_cast<uint64_t>(i))
                    .ok());
  }
  const PrivateSketch probe = engine->Sketch(xs[0], 999);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&engine, &probe, &failures] {
      std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> pending;
      pending.reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        pending.push_back(engine->SubmitQuery(probe, 5));
      }
      for (auto& future : pending) {
        const auto result = future.Get();
        if (!result.ok() || result->size() > 5 || result->empty()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Grow the corpus while the clients hammer the query path.
  std::thread inserter([&engine, &xs] {
    for (int64_t i = 16; i < 32; ++i) {
      const Status added =
          engine->InsertVector("grow-" + std::to_string(i),
                               xs[static_cast<size_t>(i)],
                               200 + static_cast<uint64_t>(i));
      DPJL_CHECK(added.ok(), added.ToString());
    }
  });
  for (std::thread& client : clients) client.join();
  inserter.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->index_size(), 32);
  EXPECT_EQ(engine->ids().size(), 32u);
}

TEST(EngineTest, DestructorDrainsAcceptedRequests) {
  const DirectReference ref = MakeReference(11);
  std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> pending;
  {
    EngineOptions options = BaseOptions();
    options.serving_threads = 2;
    options.queue_capacity = 64;
    std::unique_ptr<Engine> engine = MakeEngineOrDie(64, options);
    for (size_t i = 0; i < ref.xs.size(); ++i) {
      ASSERT_TRUE(engine
                      ->InsertVector("doc-" + std::to_string(i), ref.xs[i],
                                     500 + static_cast<uint64_t>(i))
                      .ok());
    }
    for (int i = 0; i < 20; ++i) {
      pending.push_back(engine->SubmitQuery(ref.probe, 3));
    }
    // Engine destroyed here: accepted requests are drained, not dropped.
  }
  for (const auto& future : pending) {
    ASSERT_TRUE(future.Ready());
    const auto result = future.Get();
    EXPECT_TRUE(result.ok()) << result.status();
  }
}

}  // namespace
}  // namespace dpjl
