#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/estimators.h"
#include "src/core/sketcher.h"
#include "src/linalg/vector_ops.h"
#include "src/stats/welford.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;
using testing::NearRel;

// One estimator configuration = one of the paper's constructions.
struct EstimatorCase {
  std::string name;
  TransformKind transform;
  SketcherConfig::NoiseSelection noise;
  NoisePlacement placement;
  double epsilon;
  double delta;
  // True when PredictVariance is an exact identity (output placement).
  bool variance_exact;
  // True when the mechanism scale does not depend on the projection draw:
  // the SJLT has structural Delta_1/Delta_2, the input placement privatizes
  // the identity (Delta = 1), and the non-private case has no noise. For
  // these, the unconditional variance (over S and noise jointly) is
  // well-defined by the model; for instance-calibrated mechanisms (iid
  // Gaussian, FJLT output, Achlioptas) the model is conditional on sigma and
  // only the conditional test applies — this is exactly the Note 2
  // subtlety the paper raises about Kenthapadi et al.
  bool deterministic_scale;
};

std::vector<EstimatorCase> AllCases() {
  using Noise = SketcherConfig::NoiseSelection;
  return {
      // Theorem 3: SJLT + Laplace, pure DP.
      {"sjlt_block_laplace", TransformKind::kSjltBlock, Noise::kLaplace,
       NoisePlacement::kOutput, 1.0, 0.0, true, true},
      {"sjlt_graph_laplace", TransformKind::kSjltGraph, Noise::kLaplace,
       NoisePlacement::kOutput, 1.0, 0.0, true, true},
      // Kenthapadi et al. baseline (Theorems 1-2).
      {"iid_gaussian", TransformKind::kGaussianIid, Noise::kGaussian,
       NoisePlacement::kOutput, 1.0, 1e-6, true, false},
      // Corollary 1: FJLT + output Gaussian.
      {"fjlt_output_gaussian", TransformKind::kFjlt, Noise::kGaussian,
       NoisePlacement::kOutput, 1.0, 1e-6, true, false},
      // Lemma 8: FJLT + input Gaussian.
      {"fjlt_input_gaussian", TransformKind::kFjlt, Noise::kGaussian,
       NoisePlacement::kInput, 1.0, 1e-6, false, true},
      // Input placement with Laplace (library extension; pure DP).
      {"fjlt_input_laplace", TransformKind::kFjlt, Noise::kLaplace,
       NoisePlacement::kInput, 1.0, 0.0, false, true},
      // Kenthapadi's technique transplanted onto the SJLT (Section 6.2.3).
      {"sjlt_block_gaussian", TransformKind::kSjltBlock, Noise::kGaussian,
       NoisePlacement::kOutput, 1.0, 1e-6, true, true},
      // Achlioptas + Laplace (Section 2.1.1 extension).
      {"achlioptas_laplace", TransformKind::kAchlioptas, Noise::kLaplace,
       NoisePlacement::kOutput, 1.0, 0.0, true, false},
      // Non-private baseline: pure JL error.
      {"sjlt_block_nonprivate", TransformKind::kSjltBlock, Noise::kNone,
       NoisePlacement::kOutput, 1.0, 0.0, true, true},
      // With-replacement sparse JL (ablation; random sensitivities, so the
      // scale is instance-calibrated like the dense baselines).
      {"sparse_uniform_laplace", TransformKind::kSparseUniform, Noise::kLaplace,
       NoisePlacement::kOutput, 1.0, 0.0, true, false},
  };
}

SketcherConfig ConfigFor(const EstimatorCase& c, uint64_t projection_seed) {
  SketcherConfig config;
  config.transform = c.transform;
  config.k_override = 32;
  config.s_override = 8;
  config.beta = 0.05;
  config.epsilon = c.epsilon;
  config.delta = c.delta;
  config.placement = c.placement;
  config.noise_selection = c.noise;
  config.projection_seed = projection_seed;
  return config;
}

class EstimatorCaseTest : public ::testing::TestWithParam<EstimatorCase> {};

// E_noise[E_hat | S] for a fixed projection S. Output placement:
// ||S z||^2 exactly. Input placement: the noise passes through S, so the
// per-sketch inflation is E||S eta||^2 = m2 * ||S||_F^2 (over real input
// columns) while the center subtracts d * m2, leaving a Frobenius
// correction.
double ConditionalTarget(const PrivateSketcher& sketcher,
                         const std::vector<double>& x,
                         const std::vector<double>& y) {
  const LinearTransform& t = sketcher.transform();
  const double base = SquaredNorm(t.Apply(Sub(x, y)));
  if (sketcher.placement() == NoisePlacement::kOutput) return base;
  double frob_sq = 0.0;
  std::vector<double> col(static_cast<size_t>(t.output_dim()), 0.0);
  for (int64_t j = 0; j < t.input_dim(); ++j) {
    std::fill(col.begin(), col.end(), 0.0);
    t.AccumulateColumn(j, 1.0, &col);
    frob_sq += SquaredNorm(col);
  }
  const double m2 = sketcher.mechanism().NoiseSecondMoment();
  return base + 2.0 * m2 * (frob_sq - static_cast<double>(t.input_dim()));
}

TEST_P(EstimatorCaseTest, ConditionallyUnbiasedGivenProjection) {
  const EstimatorCase& c = GetParam();
  const int64_t d = 64;
  const PrivateSketcher sketcher = MakeSketcherOrDie(d, ConfigFor(c, kTestSeed));
  Rng rng(kTestSeed);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const double conditional_target = ConditionalTarget(sketcher, x, y);

  OnlineMoments m;
  for (int64_t t = 0; t < 4000; ++t) {
    const PrivateSketch sa = sketcher.Sketch(x, kTestSeed + 2 * t + 1);
    const PrivateSketch sb = sketcher.Sketch(y, kTestSeed + 2 * t + 2);
    m.Add(EstimateSquaredDistance(sa, sb).value());
  }
  EXPECT_NEAR(m.mean(), conditional_target, 5.0 * m.StandardError() + 1e-9)
      << "case " << c.name;
}

TEST_P(EstimatorCaseTest, UnbiasedOverProjectionAndNoise) {
  const EstimatorCase& c = GetParam();
  const int64_t d = 64;
  Rng rng(kTestSeed + 1);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const double want = SquaredDistance(x, y);

  OnlineMoments m;
  for (int64_t t = 0; t < 3000; ++t) {
    const PrivateSketcher sketcher =
        MakeSketcherOrDie(d, ConfigFor(c, kTestSeed + 100 + t));
    const PrivateSketch sa = sketcher.Sketch(x, kTestSeed + 3 * t + 1);
    const PrivateSketch sb = sketcher.Sketch(y, kTestSeed + 3 * t + 2);
    m.Add(EstimateSquaredDistance(sa, sb).value());
  }
  EXPECT_NEAR(m.mean(), want, 5.0 * m.StandardError()) << "case " << c.name;
}

TEST_P(EstimatorCaseTest, VarianceMatchesAnalyticModel) {
  // Unconditional variance (over the projection AND the noise). Only
  // meaningful when the mechanism scale is projection-independent; for
  // instance-calibrated mechanisms the per-instance sigma varies (Note 2)
  // and the conditional test below covers them.
  const EstimatorCase& c = GetParam();
  if (!c.deterministic_scale) GTEST_SKIP() << "instance-calibrated scale";
  const int64_t d = 64;
  Rng rng(kTestSeed + 2);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> z = Sub(x, y);
  const double z2sq = SquaredNorm(z);
  const double z4p4 = NormL4Pow4(z);

  OnlineMoments m;
  for (int64_t t = 0; t < 6000; ++t) {
    const PrivateSketcher sketcher =
        MakeSketcherOrDie(d, ConfigFor(c, kTestSeed + 7000 + t));
    const PrivateSketch sa = sketcher.Sketch(x, kTestSeed + 3 * t + 1);
    const PrivateSketch sb = sketcher.Sketch(y, kTestSeed + 3 * t + 2);
    m.Add(EstimateSquaredDistance(sa, sb).value());
  }
  const PrivateSketcher model = MakeSketcherOrDie(d, ConfigFor(c, kTestSeed));
  const VarianceBreakdown predicted = model.PredictVariance(z2sq, z4p4);
  EXPECT_EQ(predicted.is_exact, c.variance_exact) << "case " << c.name;
  if (c.variance_exact) {
    EXPECT_TRUE(NearRel(m.SampleVariance(), predicted.total(), 0.15))
        << "case " << c.name << " empirical=" << m.SampleVariance()
        << " predicted=" << predicted.total();
  } else {
    // Upper bound: empirical must not exceed it (with MC slack). The bound
    // overshoots by a constant (the Cauchy-Schwarz step in C.1, amplified
    // by heavy-tailed input noise); the sanity floor only rejects vacuous
    // (orders-of-magnitude) bounds.
    EXPECT_LE(m.SampleVariance(), predicted.total() * 1.10)
        << "case " << c.name;
    EXPECT_GE(m.SampleVariance(), predicted.total() / 20.0)
        << "case " << c.name;
  }
}

TEST_P(EstimatorCaseTest, ConditionalVarianceMatchesNoiseTerms) {
  // Fixed projection S, output placement: with nu = eta - mu,
  //   Var_noise[E_hat | S] = 8 m2 ||S z||^2 + 2k (m4 + m2^2)
  // — Lemma 3's noise terms with ||z||^2 replaced by the realized ||S z||^2.
  // This validates the noise bookkeeping for every construction, including
  // the instance-calibrated ones skipped by the unconditional test.
  const EstimatorCase& c = GetParam();
  if (c.placement != NoisePlacement::kOutput) {
    GTEST_SKIP() << "conditional noise variance derived for output placement";
  }
  const int64_t d = 64;
  const PrivateSketcher sketcher =
      MakeSketcherOrDie(d, ConfigFor(c, kTestSeed + 4));
  Rng rng(kTestSeed + 4);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const double sz2 = SquaredNorm(sketcher.transform().Apply(Sub(x, y)));
  const double m2 = sketcher.mechanism().distribution().SecondMoment();
  const double m4 = sketcher.mechanism().distribution().FourthMoment();
  const double k = static_cast<double>(sketcher.output_dim());
  const double predicted = 8.0 * m2 * sz2 + 2.0 * k * (m4 + m2 * m2);
  if (predicted == 0.0) GTEST_SKIP() << "non-private case has no noise";

  OnlineMoments m;
  for (int64_t t = 0; t < 8000; ++t) {
    const PrivateSketch sa = sketcher.Sketch(x, kTestSeed + 2 * t + 1);
    const PrivateSketch sb = sketcher.Sketch(y, kTestSeed + 2 * t + 2);
    m.Add(EstimateSquaredDistance(sa, sb).value());
  }
  EXPECT_TRUE(NearRel(m.SampleVariance(), predicted, 0.15))
      << "case " << c.name << " empirical=" << m.SampleVariance()
      << " predicted=" << predicted;
}

TEST_P(EstimatorCaseTest, SquaredNormEstimateIsConditionallyCentered) {
  const EstimatorCase& c = GetParam();
  const int64_t d = 64;
  const PrivateSketcher sketcher =
      MakeSketcherOrDie(d, ConfigFor(c, kTestSeed + 3));
  Rng rng(kTestSeed + 3);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  double conditional_target;
  if (c.placement == NoisePlacement::kOutput) {
    conditional_target = SquaredNorm(sketcher.transform().Apply(x));
  } else {
    // Input placement: E_noise ||S(x+eta)||^2 = ||Sx||^2 + d m2 happens to
    // recentre to ||Sx||^2 only after subtracting the center; with S also
    // random the target is ||x||^2. Conditional on S the target is
    // E||S(x+eta)||^2 - d m2, which we compute by linearity of the exact
    // column norms... simplest correct conditional check: estimate over
    // noise must average to ||Sx||^2 + (E||S eta||^2 - d m2), and the second
    // term vanishes only in expectation over S. Skip to the unconditional
    // check for input placement.
    return;
  }
  OnlineMoments m;
  for (int64_t t = 0; t < 4000; ++t) {
    m.Add(EstimateSquaredNorm(sketcher.Sketch(x, kTestSeed + t)));
  }
  EXPECT_NEAR(m.mean(), conditional_target, 5.0 * m.StandardError() + 1e-9)
      << "case " << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllConstructions, EstimatorCaseTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const auto& info) { return info.param.name; });

// ---------- non-parameterized estimator behavior ----------

SketcherConfig BasicConfig(uint64_t seed) {
  SketcherConfig config;
  config.k_override = 32;
  config.s_override = 8;
  config.epsilon = 1.0;
  config.projection_seed = seed;
  return config;
}

TEST(EstimatorTest, RejectsIncompatibleSketches) {
  const int64_t d = 32;
  const PrivateSketcher s1 = MakeSketcherOrDie(d, BasicConfig(kTestSeed));
  const PrivateSketcher s2 = MakeSketcherOrDie(d, BasicConfig(kTestSeed + 1));
  Rng rng(kTestSeed);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const auto r = EstimateSquaredDistance(s1.Sketch(x, 1), s2.Sketch(x, 2));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EstimatorTest, HeterogeneousNoisePairsAreUnbiased) {
  // Party A uses Laplace, party B uses Gaussian, same projection: the
  // per-sketch centers must still cancel exactly.
  const int64_t d = 64;
  SketcherConfig ca = BasicConfig(kTestSeed);
  ca.noise_selection = SketcherConfig::NoiseSelection::kLaplace;
  SketcherConfig cb = BasicConfig(kTestSeed);
  cb.noise_selection = SketcherConfig::NoiseSelection::kGaussian;
  cb.delta = 1e-6;
  const PrivateSketcher sa = MakeSketcherOrDie(d, ca);
  const PrivateSketcher sb = MakeSketcherOrDie(d, cb);
  Rng rng(kTestSeed);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const double conditional_target =
      SquaredNorm(sa.transform().Apply(Sub(x, y)));
  OnlineMoments m;
  for (int64_t t = 0; t < 6000; ++t) {
    m.Add(EstimateSquaredDistance(sa.Sketch(x, kTestSeed + 2 * t),
                                  sb.Sketch(y, kTestSeed + 2 * t + 1))
              .value());
  }
  EXPECT_NEAR(m.mean(), conditional_target, 5.0 * m.StandardError());
}

TEST(EstimatorTest, InnerProductIsConditionallyCentered) {
  const int64_t d = 64;
  const PrivateSketcher sketcher = MakeSketcherOrDie(d, BasicConfig(kTestSeed));
  Rng rng(kTestSeed + 9);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  // Conditional target: <Sx, Sy> (polarization of the conditional targets).
  const double target =
      Dot(sketcher.transform().Apply(x), sketcher.transform().Apply(y));
  OnlineMoments m;
  for (int64_t t = 0; t < 6000; ++t) {
    m.Add(EstimateInnerProduct(sketcher.Sketch(x, kTestSeed + 2 * t),
                               sketcher.Sketch(y, kTestSeed + 2 * t + 1))
              .value());
  }
  EXPECT_NEAR(m.mean(), target, 5.0 * m.StandardError());
}

TEST(EstimatorTest, DistanceClampsAtZero) {
  const int64_t d = 32;
  const PrivateSketcher sketcher = MakeSketcherOrDie(d, BasicConfig(kTestSeed));
  const std::vector<double> x(d, 0.25);
  // Identical vectors: noisy squared distance may be negative; the root
  // estimator must clamp.
  const double dist =
      EstimateDistance(sketcher.Sketch(x, 1), sketcher.Sketch(x, 2)).value();
  EXPECT_GE(dist, 0.0);
}

TEST(EstimatorTest, ChebyshevHalfWidth) {
  EXPECT_DOUBLE_EQ(ChebyshevHalfWidth(4.0, 0.25), 4.0);
  EXPECT_DOUBLE_EQ(ChebyshevHalfWidth(0.0, 0.5), 0.0);
}

TEST(EstimatorTest, ChebyshevHalfWidthRejectsOutOfDomainArguments) {
  // failure_prob must lie strictly inside (0, 1) and variance must be
  // non-negative; the half-width silently returned for a bad domain would
  // be a meaningless (inf/nan) confidence claim, so the check is fatal.
  EXPECT_DEATH((void)ChebyshevHalfWidth(1.0, 0.0), "failure probability");
  EXPECT_DEATH((void)ChebyshevHalfWidth(1.0, 1.0), "failure probability");
  EXPECT_DEATH((void)ChebyshevHalfWidth(1.0, -0.25), "failure probability");
  EXPECT_DEATH((void)ChebyshevHalfWidth(1.0, 1.5), "failure probability");
  EXPECT_DEATH((void)ChebyshevHalfWidth(-1e-9, 0.5), "variance");
}

TEST(EstimatorTest, CosineSimilarityFailsWhenNormEstimateNonPositive) {
  // Two compatible all-zero sketches whose metadata carries a positive
  // noise center: both norm estimates are exactly -noise_center < 0, the
  // deterministic version of "the vectors drowned in the noise floor".
  SketchMetadata meta;
  meta.transform = TransformKind::kSjltBlock;
  meta.input_dim = 8;
  meta.output_dim = 4;
  meta.sparsity = 2;
  meta.projection_seed = 77;
  meta.noise_center = 1.0;
  const PrivateSketch a(std::vector<double>(4, 0.0), meta);
  const PrivateSketch b(std::vector<double>(4, 0.0), meta);
  EXPECT_DOUBLE_EQ(EstimateSquaredNorm(a), -1.0);
  const auto cosine = EstimateCosineSimilarity(a, b);
  ASSERT_FALSE(cosine.ok());
  EXPECT_EQ(cosine.status().code(), StatusCode::kFailedPrecondition);

  // One-sided failure: a genuine norm on one side does not rescue a
  // below-floor norm on the other.
  SketchMetadata healthy = meta;
  healthy.noise_center = 0.0;
  const PrivateSketch c({2.0, 0.0, 0.0, 0.0}, healthy);
  ASSERT_FALSE(EstimateCosineSimilarity(c, b).ok());
}

TEST(EstimatorTest, ChebyshevIntervalCovers) {
  // Empirical coverage of the Chebyshev interval must be at least 1 - p.
  const int64_t d = 64;
  Rng rng(kTestSeed + 11);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> z = Sub(x, y);
  const double truth = SquaredNorm(z);
  const double failure_prob = 0.1;

  int64_t covered = 0;
  constexpr int64_t kTrials = 2000;
  for (int64_t t = 0; t < kTrials; ++t) {
    const PrivateSketcher sketcher =
        MakeSketcherOrDie(d, BasicConfig(kTestSeed + 500 + t));
    const double est =
        EstimateSquaredDistance(sketcher.Sketch(x, kTestSeed + 2 * t),
                                sketcher.Sketch(y, kTestSeed + 2 * t + 1))
            .value();
    const double hw = ChebyshevHalfWidth(
        sketcher.PredictVariance(SquaredNorm(z), NormL4Pow4(z)).total(),
        failure_prob);
    covered += (std::fabs(est - truth) <= hw);
  }
  EXPECT_GE(static_cast<double>(covered) / kTrials, 1.0 - failure_prob);
}

}  // namespace
}  // namespace dpjl
