// Bit-exactness suite for the SIMD kernel layer (src/linalg/kernels.h).
//
// The contract under test is byte-identity, not closeness: every vector
// table must reproduce the scalar reference's output bit-for-bit on every
// size — including non-blocked tails, signed zeros and denormals — and the
// matrix-form batch path must reproduce the serial scalar Sketch() loop
// exactly at every thread count. EXPECT_DOUBLE_EQ would hide exactly the
// bugs this layer can have (FMA contraction, reassociation, flipped -0.0),
// so all comparisons go through memcmp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/batch_sketcher.h"
#include "src/core/sketcher.h"
#include "src/jl/transform.h"
#include "src/linalg/dense_matrix.h"
#include "src/linalg/hadamard.h"
#include "src/linalg/kernels.h"
#include "src/random/rng.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;

const int kThreadCounts[] = {1, 2, 7};

/// RAII: pin the dispatched kernel table for a scope, restore on exit.
class KernelOverride {
 public:
  explicit KernelOverride(const KernelOps* ops) { SetKernelsForTest(ops); }
  ~KernelOverride() { SetKernelsForTest(nullptr); }
};

/// The non-scalar tables this build + CPU can run.
std::vector<const KernelOps*> VectorTables() {
  std::vector<const KernelOps*> tables;
  for (const char* name : {"avx2", "avx512"}) {
    if (const KernelOps* t = KernelsByName(name)) tables.push_back(t);
  }
  return tables;
}

bool BytesEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Deterministic data with awkward values mixed in: exact zeros, negative
/// zeros, denormals, and magnitudes spanning many exponents.
std::vector<double> TestVector(int64_t n, uint64_t salt) {
  Rng rng(DeriveSeed(kTestSeed, salt));
  std::vector<double> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(8)) {
      case 0:
        v[i] = 0.0;
        break;
      case 1:
        v[i] = -0.0;
        break;
      case 2:
        v[i] = std::numeric_limits<double>::denorm_min() *
               static_cast<double>(1 + rng.UniformInt(100));
        break;
      default:
        v[i] = rng.Gaussian() * std::pow(2.0, static_cast<double>(
                                                  rng.UniformInt(40)) -
                                                  20.0);
        break;
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Raw kernel-vs-scalar identity, per table, across blocked and tail sizes.

TEST(KernelDispatchTest, TablesAreWellFormed) {
  const KernelOps& scalar = ScalarKernels();
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_EQ(KernelsByName("scalar"), &scalar);
  EXPECT_EQ(KernelsByName("no-such-table"), nullptr);
  EXPECT_EQ(KernelsByName(nullptr), nullptr);
  // Whatever was dispatched must be a complete table.
  const KernelOps& active = Kernels();
  EXPECT_NE(active.name, nullptr);
  EXPECT_NE(active.fwht, nullptr);
  EXPECT_NE(active.fwht_block, nullptr);
  EXPECT_NE(active.gemv, nullptr);
  EXPECT_NE(active.gemv_block, nullptr);
  EXPECT_NE(active.csr_apply, nullptr);
  EXPECT_NE(active.csr_apply_block, nullptr);
  EXPECT_NE(active.sjlt_column_block, nullptr);
  EXPECT_NE(active.scale, nullptr);
  EXPECT_NE(active.squared_distance_block, nullptr);
  EXPECT_NE(active.dot_block, nullptr);
}

TEST(KernelDispatchTest, TestOverridePinsAndRestores) {
  const KernelOps& dispatched = Kernels();
  {
    KernelOverride pin(&ScalarKernels());
    EXPECT_STREQ(Kernels().name, "scalar");
  }
  EXPECT_EQ(&Kernels(), &dispatched);
}

TEST(KernelBitExactnessTest, Fwht) {
  const KernelOps& scalar = ScalarKernels();
  for (const KernelOps* table : VectorTables()) {
    for (int64_t n : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8},
                      int64_t{16}, int64_t{64}, int64_t{512}}) {
      std::vector<double> expect = TestVector(n, 11 + static_cast<uint64_t>(n));
      std::vector<double> got = expect;
      scalar.fwht(expect.data(), n);
      table->fwht(got.data(), n);
      EXPECT_TRUE(BytesEqual(expect, got))
          << table->name << " fwht n=" << n;
    }
  }
}

TEST(KernelBitExactnessTest, FwhtBlock) {
  const KernelOps& scalar = ScalarKernels();
  for (const KernelOps* table : VectorTables()) {
    for (int64_t n : {int64_t{1}, int64_t{4}, int64_t{32}, int64_t{128}}) {
      for (int64_t width : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{4},
                            int64_t{5}, int64_t{7}, int64_t{8}, int64_t{9},
                            int64_t{16}}) {
        std::vector<double> expect =
            TestVector(n * width, 23 + static_cast<uint64_t>(n * width));
        std::vector<double> got = expect;
        scalar.fwht_block(expect.data(), n, width);
        table->fwht_block(got.data(), n, width);
        EXPECT_TRUE(BytesEqual(expect, got))
            << table->name << " fwht_block n=" << n << " width=" << width;
      }
    }
  }
}

TEST(KernelBitExactnessTest, FwhtBlockLanesMatchSingleVectorFwht) {
  // The per-lane math of fwht_block IS fwht: deinterleaving must give the
  // single-vector transform exactly (this is what lets the batch FJLT share
  // one pass across items).
  const KernelOps& active = Kernels();
  const int64_t n = 64;
  const int64_t width = 8;
  std::vector<double> block = TestVector(n * width, 31);
  std::vector<std::vector<double>> lanes(static_cast<size_t>(width));
  for (int64_t t = 0; t < width; ++t) {
    lanes[t].resize(static_cast<size_t>(n));
    for (int64_t j = 0; j < n; ++j) lanes[t][j] = block[j * width + t];
  }
  active.fwht_block(block.data(), n, width);
  for (int64_t t = 0; t < width; ++t) {
    active.fwht(lanes[t].data(), n);
    for (int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(std::memcmp(&lanes[t][j], &block[j * width + t],
                            sizeof(double)),
                0)
          << "lane " << t << " element " << j;
    }
  }
}

TEST(KernelBitExactnessTest, Gemv) {
  const KernelOps& scalar = ScalarKernels();
  const std::pair<int64_t, int64_t> kShapes[] = {
      {1, 1}, {3, 5}, {4, 4}, {7, 9}, {16, 16}, {33, 17}, {64, 41}};
  for (const KernelOps* table : VectorTables()) {
    for (auto [rows, cols] : kShapes) {
      const std::vector<double> m =
          TestVector(rows * cols, 41 + static_cast<uint64_t>(rows * cols));
      const std::vector<double> x = TestVector(cols, 43 + static_cast<uint64_t>(cols));
      std::vector<double> expect(static_cast<size_t>(rows));
      std::vector<double> got(static_cast<size_t>(rows));
      scalar.gemv(m.data(), rows, cols, x.data(), expect.data());
      table->gemv(m.data(), rows, cols, x.data(), got.data());
      EXPECT_TRUE(BytesEqual(expect, got))
          << table->name << " gemv " << rows << "x" << cols;
    }
  }
}

TEST(KernelBitExactnessTest, GemvBlock) {
  const KernelOps& scalar = ScalarKernels();
  const std::pair<int64_t, int64_t> kShapes[] = {
      {1, 1}, {4, 4}, {7, 9}, {16, 13}};
  for (const KernelOps* table : VectorTables()) {
    for (auto [rows, cols] : kShapes) {
      for (int64_t width : {int64_t{1}, int64_t{3}, int64_t{4}, int64_t{5},
                            int64_t{8}, int64_t{11}}) {
        const std::vector<double> m =
            TestVector(rows * cols, 47 + static_cast<uint64_t>(rows + width));
        const std::vector<double> x =
            TestVector(cols * width, 53 + static_cast<uint64_t>(cols * width));
        std::vector<double> expect(static_cast<size_t>(rows * width));
        std::vector<double> got(static_cast<size_t>(rows * width));
        scalar.gemv_block(m.data(), rows, cols, x.data(), width, expect.data());
        table->gemv_block(m.data(), rows, cols, x.data(), width, got.data());
        EXPECT_TRUE(BytesEqual(expect, got))
            << table->name << " gemv_block " << rows << "x" << cols
            << " width=" << width;
      }
    }
  }
}

/// A deterministic CSR matrix with uneven rows (including empty ones).
struct TestCsr {
  std::vector<int64_t> row_ptr;
  std::vector<int32_t> col_idx;
  std::vector<double> values;
};

TestCsr MakeCsr(int64_t rows, int64_t cols, uint64_t salt) {
  Rng rng(DeriveSeed(kTestSeed, salt));
  TestCsr csr;
  csr.row_ptr.push_back(0);
  for (int64_t i = 0; i < rows; ++i) {
    // ~30% density per row; some rows come out empty, which the kernels
    // must handle (a zero-output row, not a skipped one).
    for (int64_t col = 0; col < cols; ++col) {
      if (!rng.Bernoulli(0.3)) continue;
      csr.col_idx.push_back(static_cast<int32_t>(col));
      csr.values.push_back(rng.Gaussian());
    }
    csr.row_ptr.push_back(static_cast<int64_t>(csr.values.size()));
  }
  return csr;
}

TEST(KernelBitExactnessTest, CsrApplyAndBlock) {
  const KernelOps& scalar = ScalarKernels();
  const int64_t rows = 23;
  const int64_t cols = 37;
  const TestCsr csr = MakeCsr(rows, cols, 59);
  const double scale = 0.3187;
  for (const KernelOps* table : VectorTables()) {
    {
      const std::vector<double> w = TestVector(cols, 61);
      std::vector<double> expect(static_cast<size_t>(rows));
      std::vector<double> got(static_cast<size_t>(rows));
      scalar.csr_apply(csr.row_ptr.data(), csr.col_idx.data(),
                       csr.values.data(), rows, w.data(), scale,
                       expect.data());
      table->csr_apply(csr.row_ptr.data(), csr.col_idx.data(),
                       csr.values.data(), rows, w.data(), scale, got.data());
      EXPECT_TRUE(BytesEqual(expect, got)) << table->name << " csr_apply";
    }
    for (int64_t width : {int64_t{1}, int64_t{3}, int64_t{5}, int64_t{8},
                          int64_t{13}}) {
      const std::vector<double> w =
          TestVector(cols * width, 67 + static_cast<uint64_t>(width));
      std::vector<double> expect(static_cast<size_t>(rows * width));
      std::vector<double> got(static_cast<size_t>(rows * width));
      scalar.csr_apply_block(csr.row_ptr.data(), csr.col_idx.data(),
                             csr.values.data(), rows, w.data(), width, scale,
                             expect.data());
      table->csr_apply_block(csr.row_ptr.data(), csr.col_idx.data(),
                             csr.values.data(), rows, w.data(), width, scale,
                             got.data());
      EXPECT_TRUE(BytesEqual(expect, got))
          << table->name << " csr_apply_block width=" << width;
    }
  }
}

TEST(KernelBitExactnessTest, SjltColumnBlockPreservesZeroLanesBitwise) {
  const KernelOps& scalar = ScalarKernels();
  const int64_t s = 5;
  const int64_t out_rows = 16;
  const int64_t rows[s] = {0, 3, 3, 7, 15};
  const double signs[s] = {1.0, -1.0, 1.0, -1.0, -1.0};
  for (const KernelOps* table : VectorTables()) {
    for (int64_t width : {int64_t{1}, int64_t{3}, int64_t{4}, int64_t{5},
                          int64_t{8}, int64_t{9}}) {
      // Lanes mix nonzeros with +0.0 and -0.0; the accumulator is seeded
      // with negative zeros so an unmasked `y += 0.0` would flip bits.
      std::vector<double> x = TestVector(width, 71 + static_cast<uint64_t>(width));
      if (width > 1) x[1] = 0.0;
      x[0] = -0.0;
      std::vector<double> expect(static_cast<size_t>(out_rows * width), -0.0);
      std::vector<double> got = expect;
      scalar.sjlt_column_block(x.data(), width, 0.7071, rows, signs, s,
                               expect.data());
      table->sjlt_column_block(x.data(), width, 0.7071, rows, signs, s,
                               got.data());
      EXPECT_TRUE(BytesEqual(expect, got))
          << table->name << " sjlt_column_block width=" << width;
    }
  }
}

TEST(KernelBitExactnessTest, Scale) {
  const KernelOps& scalar = ScalarKernels();
  for (const KernelOps* table : VectorTables()) {
    for (int64_t n : {int64_t{1}, int64_t{7}, int64_t{8}, int64_t{100}}) {
      std::vector<double> expect = TestVector(n, 73 + static_cast<uint64_t>(n));
      std::vector<double> got = expect;
      scalar.scale(expect.data(), n, 0.125);
      table->scale(got.data(), n, 0.125);
      EXPECT_TRUE(BytesEqual(expect, got)) << table->name << " scale n=" << n;
    }
  }
}

TEST(KernelBitExactnessTest, SquaredDistanceBlock) {
  const KernelOps& scalar = ScalarKernels();
  for (const KernelOps* table : VectorTables()) {
    for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{13},
                      int64_t{96}}) {
      for (int64_t width = 1; width <= 8; ++width) {
        const std::vector<double> q =
            TestVector(k, 401 + static_cast<uint64_t>(k * 8 + width));
        const std::vector<double> block = TestVector(
            k * width, 457 + static_cast<uint64_t>(k * 8 + width));
        std::vector<double> expect(static_cast<size_t>(width), -1.0);
        std::vector<double> got(static_cast<size_t>(width), -1.0);
        scalar.squared_distance_block(q.data(), block.data(), k, width,
                                      expect.data());
        table->squared_distance_block(q.data(), block.data(), k, width,
                                      got.data());
        EXPECT_TRUE(BytesEqual(expect, got))
            << table->name << " squared_distance_block k=" << k
            << " width=" << width;
      }
    }
  }
}

TEST(KernelBitExactnessTest, DotBlock) {
  const KernelOps& scalar = ScalarKernels();
  for (const KernelOps* table : VectorTables()) {
    for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{13},
                      int64_t{96}}) {
      for (int64_t width = 1; width <= 8; ++width) {
        const std::vector<double> q =
            TestVector(k, 811 + static_cast<uint64_t>(k * 8 + width));
        const std::vector<double> block = TestVector(
            k * width, 877 + static_cast<uint64_t>(k * 8 + width));
        std::vector<double> expect(static_cast<size_t>(width), -1.0);
        std::vector<double> got(static_cast<size_t>(width), -1.0);
        scalar.dot_block(q.data(), block.data(), k, width, expect.data());
        table->dot_block(q.data(), block.data(), k, width, got.data());
        EXPECT_TRUE(BytesEqual(expect, got))
            << table->name << " dot_block k=" << k << " width=" << width;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NextPowerOfTwo overflow guard (satellite bugfix).

TEST(NextPowerOfTwoTest, BoundaryAndOverflowGuard) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo((int64_t{1} << 62) - 1), int64_t{1} << 62);
  EXPECT_EQ(NextPowerOfTwo(int64_t{1} << 62), int64_t{1} << 62);
  EXPECT_DEATH((void)NextPowerOfTwo((int64_t{1} << 62) + 1), "overflows");
  EXPECT_DEATH((void)NextPowerOfTwo(std::numeric_limits<int64_t>::max()),
               "overflows");
}

// ---------------------------------------------------------------------------
// Transform-level property suite: ApplyBlock vs per-item Apply, and the full
// vectorized BatchSketch vs the forced-scalar serial Sketch loop, across
// dims {small, non-blocked tail, large} x threads {1, 2, 7}.

SketcherConfig Base() {
  SketcherConfig c;
  c.k_override = 64;
  c.s_override = 8;
  c.epsilon = 2.0;
  c.projection_seed = kTestSeed;
  return c;
}

struct BatchCase {
  const char* label;
  TransformKind transform;
  NoisePlacement placement;
  double delta;
};

const BatchCase kBatchCases[] = {
    {"sjlt_block", TransformKind::kSjltBlock, NoisePlacement::kOutput, 0.0},
    {"sjlt_graph", TransformKind::kSjltGraph, NoisePlacement::kOutput, 0.0},
    {"fjlt_output", TransformKind::kFjlt, NoisePlacement::kOutput, 0.0},
    {"fjlt_input", TransformKind::kFjlt, NoisePlacement::kInput, 0.0},
    {"fjlt_post_hadamard", TransformKind::kFjlt, NoisePlacement::kPostHadamard,
     1e-6},
    {"gaussian", TransformKind::kGaussianIid, NoisePlacement::kOutput, 0.0},
    {"achlioptas", TransformKind::kAchlioptas, NoisePlacement::kOutput, 0.0},
    {"sparse_uniform", TransformKind::kSparseUniform, NoisePlacement::kOutput,
     0.0},
};

/// Batch sizes: sub-micro-block, exact micro-blocks, and ragged tails.
const int64_t kBatchSizes[] = {1, 5, 8, 19};

/// Input dims: small, a non-power-of-two FJLT-padding tail, and large.
const int64_t kDims[] = {3, 13, 96};

std::vector<std::vector<double>> MakeBatch(int64_t n, int64_t d,
                                           uint64_t salt) {
  std::vector<std::vector<double>> xs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    xs[i] = TestVector(d, salt + static_cast<uint64_t>(i));
  }
  // Whole-vector zeros exercise the SJLT all-zero-column skip.
  if (n > 2) std::fill(xs[2].begin(), xs[2].end(), 0.0);
  return xs;
}

TEST(BatchBitExactnessTest, VectorizedBatchMatchesForcedScalarSerialLoop) {
  for (const BatchCase& c : kBatchCases) {
    SketcherConfig config = Base();
    config.transform = c.transform;
    config.placement = c.placement;
    config.delta = c.delta;
    for (int64_t d : kDims) {
      const PrivateSketcher sketcher = MakeSketcherOrDie(d, config);
      for (int64_t n : kBatchSizes) {
        const std::vector<std::vector<double>> xs =
            MakeBatch(n, d, 1000 + static_cast<uint64_t>(d));
        // Reference: the serial per-item loop on the scalar table — the
        // executable definition of the public BatchItemNoiseSeed contract.
        std::vector<std::vector<double>> expect;
        {
          KernelOverride pin(&ScalarKernels());
          for (int64_t i = 0; i < n; ++i) {
            expect.push_back(
                sketcher.Sketch(xs[i], BatchItemNoiseSeed(kTestSeed, i))
                    .values());
          }
        }
        // Vectorized batch path on every available table and thread count.
        std::vector<const KernelOps*> tables = VectorTables();
        tables.push_back(&ScalarKernels());
        for (const KernelOps* table : tables) {
          KernelOverride pin(table);
          for (int threads : kThreadCounts) {
            ThreadPool pool(threads);
            BatchSketcher batcher(&sketcher, threads > 1 ? &pool : nullptr);
            auto got = batcher.BatchSketch(xs, kTestSeed);
            ASSERT_TRUE(got.ok()) << got.status().ToString();
            ASSERT_EQ(got->size(), static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
              EXPECT_TRUE(BytesEqual(expect[i], (*got)[i].values()))
                  << c.label << " d=" << d << " n=" << n << " item " << i
                  << " table=" << table->name << " threads=" << threads;
            }
          }
        }
      }
    }
  }
}

TEST(BatchBitExactnessTest, ApplyBlockMatchesApplyPerItem) {
  for (const BatchCase& c : kBatchCases) {
    if (c.placement != NoisePlacement::kOutput) continue;
    SketcherConfig config = Base();
    config.transform = c.transform;
    config.noise_selection = SketcherConfig::NoiseSelection::kNone;
    for (int64_t d : kDims) {
      const PrivateSketcher sketcher = MakeSketcherOrDie(d, config);
      const LinearTransform& transform = sketcher.transform();
      const std::vector<std::vector<double>> xs =
          MakeBatch(19, d, 2000 + static_cast<uint64_t>(d));
      std::vector<std::vector<double>> expect;
      for (const std::vector<double>& x : xs) expect.push_back(transform.Apply(x));
      std::vector<std::vector<double>> got(xs.size());
      std::vector<double> scratch;
      transform.ApplyBlock(xs.data(), static_cast<int64_t>(xs.size()),
                           got.data(), &scratch);
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(BytesEqual(expect[i], got[i]))
            << c.label << " d=" << d << " item " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ResolveGrain (satellite bugfix: no more silent one-item tasks).

TEST(ResolveGrainTest, ExplicitRequestWins) {
  EXPECT_EQ(BatchSketcher::ResolveGrain(1000, 4, 17), 17);
  EXPECT_EQ(BatchSketcher::ResolveGrain(1000, 4, 1), 1);
}

TEST(ResolveGrainTest, AutoIsMicroBlockAlignedAndBounded) {
  // Large batch, 4 threads: ~16 chunks, each a multiple of the micro-block.
  const int64_t grain = BatchSketcher::ResolveGrain(1024, 4, 0);
  EXPECT_EQ(grain % kSketchBlockWidth, 0);
  EXPECT_GE(grain, kSketchBlockWidth);
  EXPECT_LE(grain, 1024);
  // Small batches never drop below one micro-block, and degenerate inputs
  // are safe.
  EXPECT_EQ(BatchSketcher::ResolveGrain(3, 8, 0), kSketchBlockWidth);
  EXPECT_EQ(BatchSketcher::ResolveGrain(0, 4, 0), kSketchBlockWidth);
  EXPECT_EQ(BatchSketcher::ResolveGrain(100, 0, 0),
            BatchSketcher::ResolveGrain(100, 1, 0));
}

TEST(ResolveGrainTest, ScalesInverselyWithThreads) {
  const int64_t g1 = BatchSketcher::ResolveGrain(4096, 1, 0);
  const int64_t g8 = BatchSketcher::ResolveGrain(4096, 8, 0);
  EXPECT_GT(g1, g8);
}

}  // namespace
}  // namespace dpjl
