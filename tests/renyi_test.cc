#include <cmath>

#include <gtest/gtest.h>

#include "src/dp/accountant.h"
#include "src/dp/renyi.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::NearRel;

TEST(RenyiTest, GaussianRdpClosedForm) {
  // (order, order * Delta^2 / (2 sigma^2)).
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(4.0, 2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(GaussianRdp(3.0, 1.0, 2.0), 6.0);
}

TEST(RenyiTest, LaplaceRdpApproachesPureEpsilonAtHighOrder) {
  const double b = 2.0;
  const double delta1 = 1.0;
  const double pure_eps = delta1 / b;  // Laplace mechanism's pure-DP epsilon
  const double rdp_high = LaplaceRdp(512.0, b, delta1);
  EXPECT_LT(rdp_high, pure_eps);
  EXPECT_GT(rdp_high, pure_eps * 0.9);
}

TEST(RenyiTest, LaplaceRdpIsMonotoneInOrder) {
  const double b = 1.5;
  double prev = 0.0;
  for (double order : {1.5, 2.0, 4.0, 8.0, 32.0}) {
    const double cur = LaplaceRdp(order, b, 1.0);
    EXPECT_GT(cur, prev) << "order " << order;
    prev = cur;
  }
}

TEST(RenyiTest, LaplaceRdpBelowPureEpsilonEverywhere) {
  // RDP of any pure eps-DP mechanism is at most eps at every order.
  for (double t : {0.25, 1.0, 3.0}) {
    for (double order : {1.5, 2.0, 10.0, 64.0}) {
      EXPECT_LE(LaplaceRdp(order, 1.0 / t, 1.0), t * (1.0 + 1e-12))
          << "t=" << t << " order=" << order;
    }
  }
}

TEST(RenyiTest, SingleGaussianConversionMatchesClassicShape) {
  // One Gaussian release with sigma from the classic calibration at
  // (eps0, delta) should convert back to roughly eps0 at the same delta
  // (RDP conversion is within a small constant of the classic analysis).
  const double eps0 = 1.0;
  const double delta = 1e-6;
  const double sigma = std::sqrt(2.0 * std::log(1.25 / delta)) / eps0;
  RenyiAccountant acc;
  acc.RecordGaussian(sigma, 1.0);
  const PrivacyParams converted = acc.ToApproxDp(delta).value();
  EXPECT_GT(converted.epsilon, 0.3 * eps0);
  EXPECT_LT(converted.epsilon, 1.3 * eps0);
}

TEST(RenyiTest, CompositionBeatsAdvancedCompositionForGaussians) {
  const double sigma = 10.0;
  const double delta = 1e-6;
  const int64_t t = 200;

  RenyiAccountant rdp;
  for (int64_t i = 0; i < t; ++i) rdp.RecordGaussian(sigma, 1.0);
  const double rdp_eps = rdp.ToApproxDp(delta).value().epsilon;

  // Advanced composition on the per-release (eps_i, delta_i) pairs with the
  // same total delta budget split in half.
  const double per_release_eps =
      std::sqrt(2.0 * std::log(1.25 / (delta / (2.0 * t)))) / sigma;
  const PrivacyParams adv = AdvancedCompositionBound(
                                PrivacyParams{per_release_eps, delta / (2.0 * t)},
                                t, delta / 2.0)
                                .value();
  EXPECT_LT(rdp_eps, adv.epsilon);
}

TEST(RenyiTest, PureRecordsAddUp) {
  RenyiAccountant acc;
  acc.RecordPure(0.1);
  acc.RecordPure(0.2);
  EXPECT_EQ(acc.num_releases(), 2);
  // At any order, accumulated RDP is 0.3; conversion adds the delta term.
  const PrivacyParams p = acc.ToApproxDp(1e-9).value();
  EXPECT_GT(p.epsilon, 0.3);
}

TEST(RenyiTest, ToApproxDpValidates) {
  RenyiAccountant acc;
  EXPECT_FALSE(acc.ToApproxDp(1e-6).ok());  // nothing recorded
  acc.RecordPure(1.0);
  EXPECT_FALSE(acc.ToApproxDp(0.0).ok());
  EXPECT_FALSE(acc.ToApproxDp(1.0).ok());
  EXPECT_TRUE(acc.ToApproxDp(1e-6).ok());
}

TEST(RenyiTest, WithOrdersValidates) {
  EXPECT_FALSE(RenyiAccountant::WithOrders({}).ok());
  EXPECT_FALSE(RenyiAccountant::WithOrders({1.0}).ok());
  EXPECT_FALSE(RenyiAccountant::WithOrders({2.0, 0.5}).ok());
  EXPECT_TRUE(RenyiAccountant::WithOrders({2.0, 8.0}).ok());
}

TEST(RenyiTest, MixedMechanismComposition) {
  RenyiAccountant acc;
  acc.RecordGaussian(5.0, 1.0);
  acc.RecordLaplace(4.0, 1.0);
  acc.RecordPure(0.05);
  EXPECT_EQ(acc.num_releases(), 3);
  const PrivacyParams p = acc.ToApproxDp(1e-8).value();
  EXPECT_GT(p.epsilon, 0.0);
  // Adding a release can only increase the budget.
  acc.RecordGaussian(5.0, 1.0);
  EXPECT_GT(acc.ToApproxDp(1e-8).value().epsilon, p.epsilon);
}

TEST(RenyiTest, TighterDeltaCostsMoreEpsilon) {
  RenyiAccountant acc;
  for (int i = 0; i < 10; ++i) acc.RecordGaussian(8.0, 1.0);
  EXPECT_GT(acc.ToApproxDp(1e-12).value().epsilon,
            acc.ToApproxDp(1e-4).value().epsilon);
}

}  // namespace
}  // namespace dpjl
