// Server + Client suite: a loopback Server wrapping an Engine must answer
// every RPC byte-identically to calling the same engine in-process, carry
// the scheduling metadata (priority lane, tenant, deadline) from the frame
// header into Engine::Submit*, surface the engine's whole error model
// through kErrorResponse frames, and map transport-level failures to the
// kUnavailable signal replica failover keys on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace dpjl {
namespace net {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;

constexpr int64_t kDim = 64;

SketcherConfig BaseSketcher() {
  SketcherConfig c;
  c.k_override = 64;
  c.s_override = 8;
  c.epsilon = 2.0;
  c.projection_seed = kTestSeed;
  return c;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.sketcher = BaseSketcher();
  options.num_shards = 4;
  options.serving_threads = 2;
  return options;
}

/// A served engine with a small corpus plus the matching sketcher and a
/// probe — everything a wire test needs on both ends of the socket.
struct ServedEngine {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Server> server;
  PrivateSketcher sketcher;
  PrivateSketch probe;
};

ServedEngine StartServedEngine(int64_t corpus_size,
                               EngineOptions options = BaseOptions()) {
  ServedEngine served{nullptr, nullptr, MakeSketcherOrDie(kDim, BaseSketcher()),
                      PrivateSketch()};
  auto engine = Engine::Create(kDim, options);
  DPJL_CHECK(engine.ok(), engine.status().ToString());
  served.engine = std::move(engine).value();
  Rng rng(kTestSeed);
  for (int64_t i = 0; i < corpus_size; ++i) {
    const auto x = DenseGaussianVector(kDim, 1.0, &rng);
    const Status added = served.engine->Insert(
        "doc-" + std::to_string((i * 37) % 101),
        served.sketcher.Sketch(x, 500 + static_cast<uint64_t>(i)));
    DPJL_CHECK(added.ok(), added.ToString());
  }
  served.probe = served.sketcher.Sketch(DenseGaussianVector(kDim, 1.0, &rng),
                                        999);
  auto server = Server::Start(served.engine.get(), ServerOptions());
  DPJL_CHECK(server.ok(), server.status().ToString());
  served.server = std::move(server).value();
  return served;
}

void ExpectSameNeighbors(const std::vector<SketchIndex::Neighbor>& actual,
                         const std::vector<SketchIndex::Neighbor>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    EXPECT_EQ(actual[i].squared_distance, expected[i].squared_distance)
        << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Byte-identity of every query RPC

TEST(ServerTest, QueriesOverTheWireByteIdenticalToInProcess) {
  ServedEngine served = StartServedEngine(23);
  Client client(served.server->host(), served.server->port());

  const auto wire_nn = client.NearestNeighbors(served.probe, 7);
  ASSERT_TRUE(wire_nn.ok()) << wire_nn.status();
  const auto local_nn = served.engine->NearestNeighbors(served.probe, 7);
  ASSERT_TRUE(local_nn.ok());
  ExpectSameNeighbors(*wire_nn, *local_nn);

  const double radius = local_nn->back().squared_distance;
  const auto wire_range = client.RangeQuery(served.probe, radius);
  ASSERT_TRUE(wire_range.ok()) << wire_range.status();
  ExpectSameNeighbors(*wire_range,
                      served.engine->RangeQuery(served.probe, radius).value());

  const auto wire_distance = client.SquaredDistance("doc-0", "doc-37");
  ASSERT_TRUE(wire_distance.ok()) << wire_distance.status();
  EXPECT_EQ(*wire_distance,
            served.engine->SquaredDistance("doc-0", "doc-37").value());

  const auto wire_sketch = client.GetSketch("doc-0");
  ASSERT_TRUE(wire_sketch.ok()) << wire_sketch.status();
  EXPECT_EQ(wire_sketch->Serialize(),
            served.engine->GetSketch("doc-0")->Serialize());

  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, BatchQueryMatchesPerProbeQueries) {
  ServedEngine served = StartServedEngine(17);
  Client client(served.server->host(), served.server->port());

  Rng rng(kTestSeed + 1);
  std::vector<PrivateSketch> probes;
  for (int i = 0; i < 3; ++i) {
    probes.push_back(served.sketcher.Sketch(
        DenseGaussianVector(kDim, 1.0, &rng), 7000 + static_cast<uint64_t>(i)));
  }
  const auto batch = client.BatchQuery(probes, 5);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ExpectSameNeighbors((*batch)[i],
                        served.engine->NearestNeighbors(probes[i], 5).value());
  }
}

TEST(ServerTest, InsertOverTheWireServesSubsequentQueries) {
  ServedEngine served = StartServedEngine(5);
  Client client(served.server->host(), served.server->port());

  Rng rng(kTestSeed + 2);
  const PrivateSketch sketch =
      served.sketcher.Sketch(DenseGaussianVector(kDim, 1.0, &rng), 12345);
  ASSERT_TRUE(client.Insert("wire-doc", sketch).ok());

  // The insert is visible to lookups from the same and other connections,
  // and the stored bytes are exactly what was sent.
  const auto fetched = client.GetSketch("wire-doc");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->Serialize(), sketch.Serialize());
  EXPECT_EQ(served.engine->index_size(), 6);

  // Duplicate-id insertion surfaces the engine's own error.
  const Status duplicate = client.Insert("wire-doc", sketch);
  EXPECT_EQ(duplicate.code(), StatusCode::kInvalidArgument) << duplicate;
}

// ---------------------------------------------------------------------------
// Error-model propagation

TEST(ServerTest, EngineErrorsCrossTheWireWithCodeAndMessage) {
  ServedEngine served = StartServedEngine(5);
  Client client(served.server->host(), served.server->port());

  const auto missing = client.SquaredDistance("doc-0", "no-such-id");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // The error message crosses the wire intact, not just the code.
  const auto sketch = client.GetSketch("no-such-id");
  ASSERT_FALSE(sketch.ok());
  EXPECT_EQ(sketch.status().code(), StatusCode::kNotFound);
  EXPECT_NE(sketch.status().message().find("no-such-id"), std::string::npos);
}

TEST(ServerTest, ExhaustedDeadlineBudgetFailsDeadlineExceeded) {
  ServedEngine served = StartServedEngine(5);
  Client client(served.server->host(), served.server->port());

  // A caller whose budget is already spent passes the remaining (negative)
  // budget verbatim; the engine admits and expires it deterministically.
  RequestOptions request;
  request.deadline_ms = -5;
  const auto expired = client.NearestNeighbors(served.probe, 3, request);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerTest, TenantRateLimitRefusesOverTheWire) {
  EngineOptions options = BaseOptions();
  options.tenant_rate = 1;  // one request/second, burst of one
  ServedEngine served = StartServedEngine(5, options);
  Client client(served.server->host(), served.server->port());

  RequestOptions metered;
  metered.tenant = "metered-tenant";
  const auto first = client.NearestNeighbors(served.probe, 3, metered);
  ASSERT_TRUE(first.ok()) << first.status();
  const auto second = client.NearestNeighbors(served.probe, 3, metered);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("metered-tenant"),
            std::string::npos);

  // Unmetered (empty-tenant) traffic is unaffected.
  EXPECT_TRUE(client.NearestNeighbors(served.probe, 3).ok());
}

TEST(ServerTest, PriorityAndTenantFromTheFrameReachTheEngineLanes) {
  ServedEngine served = StartServedEngine(5);
  Client client(served.server->host(), served.server->port());

  RequestOptions request;
  request.priority = Priority::kBatch;
  request.tenant = "acct-42";
  ASSERT_TRUE(client.NearestNeighbors(served.probe, 3, request).ok());
  served.engine->WaitIdle();

  const EngineStats stats = served.engine->Stats();
  EXPECT_EQ(stats.lane(Priority::kBatch).served, 1);
  EXPECT_EQ(stats.lane(Priority::kInteractive).served, 0);

  // The Stats RPC itself bypasses the lanes (monitoring must work when
  // they are saturated) and renders the same ToString the engine does.
  const auto wire_stats = client.Stats();
  ASSERT_TRUE(wire_stats.ok()) << wire_stats.status();
  EXPECT_EQ(*wire_stats, served.engine->Stats().ToString());
}

// ---------------------------------------------------------------------------
// Transport behavior

TEST(ServerTest, DeadPortIsUnavailable) {
  ServedEngine served = StartServedEngine(3);
  const int port = served.server->port();
  served.server->Stop();
  served.server->Stop();  // idempotent

  Client client("127.0.0.1", port, ClientOptions{/*connect_timeout_ms=*/500,
                                                 /*call_timeout_ms=*/500,
                                                 /*max_pooled_connections=*/4});
  const Status ping = client.Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_EQ(ping.code(), StatusCode::kUnavailable) << ping;
}

TEST(ServerTest, StalePooledConnectionRetriesTransparently) {
  ServedEngine first = StartServedEngine(3);
  const int port = first.server->port();
  Client client(first.server->host(), port);
  ASSERT_TRUE(client.Ping().ok());  // leaves a pooled connection behind

  // Replace the serving process behind the same port: the pooled
  // connection is now stale, and the client must absorb that with one
  // transparent reconnect instead of surfacing kUnavailable.
  first.server->Stop();
  ServedEngine second = StartServedEngine(3);
  ServerOptions reuse;
  reuse.port = port;
  auto replacement = Server::Start(second.engine.get(), reuse);
  ASSERT_TRUE(replacement.ok()) << replacement.status();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, MalformedFrameGetsDataLossErrorThenDisconnect) {
  ServedEngine served = StartServedEngine(3);
  auto connection =
      ConnectTo(served.server->host(), served.server->port(), 2000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(SetRecvTimeout(*connection, 5000).ok());

  // 48 garbage bytes parse as a fixed header with a wrong magic: the
  // server answers one kErrorResponse and half-closes — after a framing
  // error the stream position is unknowable, so it must not keep reading.
  ASSERT_TRUE(SendAll(*connection, std::string(kFrameHeaderBytes, 'Z')).ok());
  const auto error = RecvFrame(*connection);
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->header.type, MessageType::kErrorResponse);
  const auto carried = DecodeErrorStatus(error->payload);
  ASSERT_TRUE(carried.ok()) << carried.status();
  EXPECT_EQ(carried->code, StatusCode::kDataLoss);

  const auto after = RecvFrame(*connection);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(ServerTest, ResponseTypedFrameIsRejectedAsNotARequest) {
  ServedEngine served = StartServedEngine(3);
  auto connection =
      ConnectTo(served.server->host(), served.server->port(), 2000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(SetRecvTimeout(*connection, 5000).ok());

  FrameHeader header;
  header.type = MessageType::kPingResponse;  // valid frame, not a request
  ASSERT_TRUE(SendFrame(*connection, header, "").ok());
  const auto error = RecvFrame(*connection);
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->header.type, MessageType::kErrorResponse);
  const auto carried = DecodeErrorStatus(error->payload);
  ASSERT_TRUE(carried.ok());
  EXPECT_EQ(carried->code, StatusCode::kInvalidArgument);

  // A well-formed-but-invalid request is NOT a framing error: the stream
  // stays in sync and the connection keeps serving.
  FrameHeader ping;
  ping.type = MessageType::kPingRequest;
  ASSERT_TRUE(SendFrame(*connection, ping, "").ok());
  const auto pong = RecvFrame(*connection);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->header.type, MessageType::kPingResponse);
}

TEST(ServerTest, ServesManyConnectionsConcurrently) {
  ServedEngine served = StartServedEngine(11);
  const auto expected = served.engine->NearestNeighbors(served.probe, 5);
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> callers;
  std::vector<Status> results(8, Status::Internal("not run"));
  for (int i = 0; i < 8; ++i) {
    callers.emplace_back([&, i] {
      Client client(served.server->host(), served.server->port());
      const auto got = client.NearestNeighbors(served.probe, 5);
      if (!got.ok()) {
        results[i] = got.status();
        return;
      }
      results[i] = got->size() == expected->size() &&
                           std::equal(got->begin(), got->end(),
                                      expected->begin(),
                                      [](const SketchIndex::Neighbor& a,
                                         const SketchIndex::Neighbor& b) {
                                        return a.id == b.id &&
                                               a.squared_distance ==
                                                   b.squared_distance;
                                      })
                       ? Status::OK()
                       : Status::Internal("results diverged");
    });
  }
  for (auto& caller : callers) caller.join();
  for (const Status& result : results) EXPECT_TRUE(result.ok()) << result;
}

TEST(ServerTest, StopUnblocksLiveConnections) {
  ServedEngine served = StartServedEngine(3);
  Client client(served.server->host(), served.server->port());
  ASSERT_TRUE(client.Ping().ok());
  served.server->Stop();
  // The pooled connection is now half-closed; a fresh connect is refused.
  // Either way the client surfaces kUnavailable, never a hang.
  const Status after = client.Ping();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.code(), StatusCode::kUnavailable) << after;
}

}  // namespace
}  // namespace net
}  // namespace dpjl
