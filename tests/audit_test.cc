#include <cmath>

#include <gtest/gtest.h>

#include "src/core/sketcher.h"
#include "src/dp/audit.h"
#include "src/dp/discrete_mechanism.h"
#include "src/dp/snapping.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;

TEST(AuditTest, ValidatesOptions) {
  const auto sampler = [](Rng* rng) { return rng->Gaussian(); };
  AuditOptions bad;
  bad.trials = 0;
  EXPECT_FALSE(AuditEpsilon(sampler, sampler, bad, kTestSeed).ok());
  bad = AuditOptions{};
  bad.bins = 1;
  EXPECT_FALSE(AuditEpsilon(sampler, sampler, bad, kTestSeed).ok());
}

TEST(AuditTest, DegenerateOutputFails) {
  const auto constant = [](Rng*) { return 1.0; };
  EXPECT_FALSE(AuditEpsilon(constant, constant, AuditOptions{}, kTestSeed).ok());
}

TEST(AuditTest, LaplaceMechanismRespectsEpsilon) {
  // Scalar Laplace mechanism at sensitivity 1: the audit must not find a
  // loss exceeding eps (plus sampling slack), and with a shift equal to
  // the full sensitivity it should find a substantial fraction of it.
  const double eps = 1.0;
  const auto on_x = [&](Rng* rng) { return 0.0 + rng->Laplace(1.0 / eps); };
  const auto on_neighbor = [&](Rng* rng) {
    return 1.0 + rng->Laplace(1.0 / eps);
  };
  const AuditResult result =
      AuditEpsilon(on_x, on_neighbor, AuditOptions{}, kTestSeed).value();
  EXPECT_LE(result.empirical_epsilon, eps * 1.2);
  EXPECT_GE(result.empirical_epsilon, eps * 0.4);
  EXPECT_GT(result.bins_evaluated, 4);
}

TEST(AuditTest, DetectsMiscalibratedMechanism) {
  // A buggy mechanism using half the required scale must audit well above
  // its *claimed* epsilon.
  const double claimed_eps = 0.5;
  const auto on_x = [&](Rng* rng) {
    return rng->Laplace(0.5 / claimed_eps);  // scale is 2x too small
  };
  const auto on_neighbor = [&](Rng* rng) {
    return 1.0 + rng->Laplace(0.5 / claimed_eps);
  };
  const AuditResult result =
      AuditEpsilon(on_x, on_neighbor, AuditOptions{}, kTestSeed).value();
  EXPECT_GT(result.empirical_epsilon, claimed_eps * 1.3);
}

TEST(AuditTest, SjltSketchCoordinateWithinBudget) {
  // Audit one coordinate of the real sketch pipeline on a worst-case
  // basis-vector pair.
  const double eps = 1.0;
  SketcherConfig config;
  config.k_override = 8;
  config.s_override = 4;
  config.epsilon = eps;
  config.projection_seed = kTestSeed;
  const PrivateSketcher sketcher = MakeSketcherOrDie(16, config);
  std::vector<double> x(16, 0.0);
  std::vector<double> x_neighbor = x;
  x_neighbor[3] = 1.0;

  uint64_t counter_x = 1;
  uint64_t counter_y = 1;
  const auto on_x = [&](Rng* rng) {
    return sketcher.Sketch(x, rng->NextUint64() ^ ++counter_x).values()[0];
  };
  const auto on_neighbor = [&](Rng* rng) {
    return sketcher.Sketch(x_neighbor, rng->NextUint64() ^ ++counter_y)
        .values()[0];
  };
  const AuditResult result =
      AuditEpsilon(on_x, on_neighbor, AuditOptions{}, kTestSeed).value();
  // One coordinate carries at most a 1/sqrt(s) shift of the total budget;
  // the audit must stay safely below eps.
  EXPECT_LE(result.empirical_epsilon, eps);
}

TEST(AuditTest, SnappingMechanismStaysNearEpsilon) {
  const double eps = 1.0;
  const SnappingMechanism snap = SnappingMechanism::Create(1.0, eps, 64.0).value();
  const auto on_x = [&](Rng* rng) { return snap.Apply(0.0, rng); };
  const auto on_neighbor = [&](Rng* rng) { return snap.Apply(1.0, rng); };
  AuditOptions options;
  options.trials = 80000;
  const AuditResult result =
      AuditEpsilon(on_x, on_neighbor, options, kTestSeed).value();
  // Snapping guarantees a slightly degraded epsilon' = eps(1 + O(Lambda/b)).
  EXPECT_LE(result.empirical_epsilon, eps * 1.5);
}

TEST(AuditTest, DiscreteLaplaceMechanismWithinBudget) {
  const double eps = 1.0;
  const int64_t k = 4;
  const DiscreteLaplaceMechanism mech =
      DiscreteLaplaceMechanism::Create(1.0, eps, k,
                                       DiscreteLaplaceMechanism::DefaultResolution(1.0, k))
          .value();
  const auto sample = [&](double value, Rng* rng) {
    std::vector<double> v(static_cast<size_t>(k), 0.0);
    v[0] = value;
    mech.Apply(&v, rng);
    return v[0];
  };
  const auto on_x = [&](Rng* rng) { return sample(0.0, rng); };
  const auto on_neighbor = [&](Rng* rng) { return sample(1.0, rng); };
  // The fine lattice spreads mass across many bins; more trials and a
  // higher per-bin floor keep tail-bin ratio noise below the margin.
  AuditOptions options;
  options.trials = 150000;
  options.min_count = 500;
  const AuditResult result =
      AuditEpsilon(on_x, on_neighbor, options, kTestSeed).value();
  EXPECT_LE(result.empirical_epsilon, eps * 1.2);
}

}  // namespace
}  // namespace dpjl
