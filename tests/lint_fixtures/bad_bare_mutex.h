// Lint fixture: a bare std::mutex member outside the wrapper header must
// fire `bare-mutex`.
#ifndef DPJL_TESTS_LINT_FIXTURES_BAD_BARE_MUTEX_H_
#define DPJL_TESTS_LINT_FIXTURES_BAD_BARE_MUTEX_H_

#include <mutex>

class UnguardedCounter {
 public:
  void Increment() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  int count_ = 0;
};

#endif  // DPJL_TESTS_LINT_FIXTURES_BAD_BARE_MUTEX_H_
