// Lint fixture: unseeded entropy outside src/random/ must fire
// `raw-entropy`.
#include <random>

int UnseededNoise() {
  std::random_device device;
  return static_cast<int>(device());
}
