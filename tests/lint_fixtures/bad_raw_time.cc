// Lint fixture: the test copies this file to <tmp>/src/jl/noise_clock.cc,
// where the wall-clock read is inside a noise path and must fire
// `raw-time-in-noise-path`.
#include <chrono>

long ClockSeededNoise() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
