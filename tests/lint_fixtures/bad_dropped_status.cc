// Lint fixture: an uncommented (void) drop must fire `discarded-status`.

struct Status {
  bool ok() const { return true; }
};

Status DoWork();

void CallerThatDropsSilently() {
  (void)DoWork();
}
