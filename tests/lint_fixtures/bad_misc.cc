// Lint fixture: naked new/delete, catch-all, and a wall-clock read in what
// the linter is told (via a src/jl/-shaped relative path in the test) is
// noise-path code.

int* LeakyAllocate() { return new int(7); }

void ManualFree(int* p) { delete p; }

void SwallowEverything() {
  try {
    ManualFree(LeakyAllocate());
  } catch (...) {
  }
}
