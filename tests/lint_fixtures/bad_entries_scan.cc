// Lint fixture: the test copies this file to <tmp>/src/core/scan.cc, where
// the range-for over a shard `entries` container must fire
// `entries-scan-in-query`; the same file outside src/core/ must be clean.
// The suppressed loop below must stay silent in both locations.
#include <deque>
#include <string>

struct Entry {
  std::string id;
};
struct Shard {
  std::deque<Entry> entries;
};

int CountByIteration(const Shard& shard) {
  int count = 0;
  for (const Entry& e : shard.entries) {
    count += static_cast<int>(e.id.size());
  }
  return count;
}

int CountSuppressed(const Shard& shard) {
  int count = 0;
  // dpjl-lint: allow(entries-scan-in-query)
  for (const Entry& e : shard.entries) {
    count += static_cast<int>(e.id.size());
  }
  return count;
}
