// Lint fixture: every would-be finding here carries a
// `// dpjl-lint: allow(<rule>)` suppression (same line or the line above),
// so a run over this file must be clean.
#include <random>

int DeliberateEntropy() {
  std::random_device device;  // dpjl-lint: allow(raw-entropy)
  return static_cast<int>(device());
}

// dpjl-lint: allow(naked-new)
int* DeliberateAllocate() { return new int(3); }

void DeliberateFree(int* p) {
  delete p;  // dpjl-lint: allow(naked-delete)
}
