// Parameterized property sweeps across the (k, s, epsilon, d) grid: the
// invariants that must hold at every configuration, not just the defaults
// used elsewhere in the suite.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/estimators.h"
#include "src/core/sketcher.h"
#include "src/jl/sjlt.h"
#include "src/linalg/hadamard.h"
#include "src/linalg/vector_ops.h"
#include "src/stats/welford.h"
#include "src/workload/generators.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::MakeSketcherOrDie;
using testing::NearRel;

// ---------- SJLT variance identity across the (k, s) grid ----------

class SjltGridTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SjltGridTest, VarianceIdentityHolds) {
  const auto [k, s] = GetParam();
  const int64_t d = 96;
  Rng rng(kTestSeed);
  const std::vector<double> z = DenseGaussianVector(d, 1.0, &rng);
  const double z2sq = SquaredNorm(z);
  const double z4p4 = NormL4Pow4(z);
  OnlineMoments m;
  for (int64_t t = 0; t < 4000; ++t) {
    auto sjlt = Sjlt::Create(d, k, s, SjltConstruction::kBlock, 8,
                             kTestSeed + static_cast<uint64_t>(t))
                    .value();
    m.Add(SquaredNorm(sjlt->Apply(z)));
  }
  const double exact =
      2.0 / static_cast<double>(k) * (z2sq * z2sq - z4p4);
  EXPECT_TRUE(NearRel(m.SampleVariance(), exact, 0.12))
      << "k=" << k << " s=" << s << " emp=" << m.SampleVariance()
      << " exact=" << exact;
}

TEST_P(SjltGridTest, StructuralSensitivitiesAtEveryScale) {
  const auto [k, s] = GetParam();
  auto sjlt =
      Sjlt::Create(96, k, s, SjltConstruction::kBlock, 8, kTestSeed).value();
  const Sensitivities sens = sjlt->ExactSensitivities();
  EXPECT_DOUBLE_EQ(sens.l1, std::sqrt(static_cast<double>(s)));
  EXPECT_DOUBLE_EQ(sens.l2, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    KsGrid, SjltGridTest,
    ::testing::Values(std::make_tuple(int64_t{16}, int64_t{2}),
                      std::make_tuple(int64_t{16}, int64_t{16}),
                      std::make_tuple(int64_t{64}, int64_t{4}),
                      std::make_tuple(int64_t{64}, int64_t{32}),
                      std::make_tuple(int64_t{256}, int64_t{8})),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- estimator centering across the epsilon grid ----------

class EpsilonGridTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonGridTest, CenteringIndependentOfBudget) {
  // The estimator must be conditionally centered at every budget: the
  // noise magnitude changes by orders of magnitude, the centering must
  // track it exactly.
  const double eps = GetParam();
  const int64_t d = 64;
  SketcherConfig config;
  config.k_override = 32;
  config.s_override = 8;
  config.epsilon = eps;
  config.projection_seed = kTestSeed;
  const PrivateSketcher sketcher = MakeSketcherOrDie(d, config);
  Rng rng(kTestSeed);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &rng);
  const double target = SquaredNorm(sketcher.transform().Apply(Sub(x, y)));
  OnlineMoments m;
  for (int64_t t = 0; t < 6000; ++t) {
    m.Add(EstimateSquaredDistance(sketcher.Sketch(x, kTestSeed + 2 * t),
                                  sketcher.Sketch(y, kTestSeed + 2 * t + 1))
              .value());
  }
  EXPECT_NEAR(m.mean(), target, 5.0 * m.StandardError()) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonGridTest,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 1000.0),
                         [](const auto& info) {
                           const double eps = info.param;
                           if (eps < 0.1) return std::string("tiny");
                           if (eps < 1.0) return std::string("small");
                           if (eps < 10.0) return std::string("unit");
                           if (eps < 1000.0) return std::string("large");
                           return std::string("huge");
                         });

// ---------- FWHT involution across sizes ----------

class FwhtSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FwhtSizeTest, InvolutionAndIsometry) {
  const int64_t n = GetParam();
  Rng rng(kTestSeed + static_cast<uint64_t>(n));
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Gaussian();
  const double norm = SquaredNorm(x);
  std::vector<double> y = x;
  NormalizedFwhtInPlace(&y);
  EXPECT_TRUE(NearRel(SquaredNorm(y), norm, 1e-9));
  NormalizedFwhtInPlace(&y);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-9 * std::max(1.0, std::fabs(x[i])));
  }
}

TEST_P(FwhtSizeTest, LinearityHolds) {
  const int64_t n = GetParam();
  Rng rng(kTestSeed + 1);
  std::vector<double> a(static_cast<size_t>(n));
  std::vector<double> b(static_cast<size_t>(n));
  for (double& v : a) v = rng.Gaussian();
  for (double& v : b) v = rng.Gaussian();
  // H(2a + 3b) == 2 Ha + 3 Hb.
  std::vector<double> combo(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) combo[i] = 2.0 * a[i] + 3.0 * b[i];
  NormalizedFwhtInPlace(&combo);
  NormalizedFwhtInPlace(&a);
  NormalizedFwhtInPlace(&b);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(combo[i], 2.0 * a[i] + 3.0 * b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FwhtSizeTest,
                         ::testing::Values(int64_t{1}, int64_t{2}, int64_t{8},
                                           int64_t{256}, int64_t{4096}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------- privacy-loss bound across the dimension grid ----------

class DimensionGridTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DimensionGridTest, LaplaceLossBoundedAtEveryDimension) {
  const int64_t d = GetParam();
  const double eps = 1.0;
  SketcherConfig config;
  config.k_override = 32;
  config.s_override = 8;
  config.epsilon = eps;
  config.projection_seed = kTestSeed + static_cast<uint64_t>(d);
  const PrivateSketcher sketcher = MakeSketcherOrDie(d, config);
  const double b = sketcher.mechanism().distribution().scale();
  Rng rng(kTestSeed);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<double> x = DenseGaussianVector(d, 1.0, &rng);
    const std::vector<double> xn =
        NeighboringVector(x, 1 + trial % std::min<int64_t>(d, 5), &rng);
    const double loss =
        NormL1(Sub(sketcher.transform().Apply(x), sketcher.transform().Apply(xn))) /
        b;
    EXPECT_LE(loss, eps * (1.0 + 1e-9)) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, DimensionGridTest,
                         ::testing::Values(int64_t{1}, int64_t{2}, int64_t{33},
                                           int64_t{1024}, int64_t{10007}),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dpjl
