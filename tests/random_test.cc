#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/dp/noise_distribution.h"
#include "src/random/discrete.h"
#include "src/random/kwise_hash.h"
#include "src/random/rng.h"
#include "src/random/splitmix64.h"
#include "src/stats/gof.h"
#include "src/stats/welford.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::NearRel;

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(kTestSeed);
  Rng b(kTestSeed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(kTestSeed);
  Rng b(kTestSeed + 1);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    agree += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_LT(agree, 2);
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(kTestSeed);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenZeroNeverZero) {
  Rng rng(kTestSeed);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpenZero(), 0.0);
    EXPECT_LE(rng.NextDoubleOpenZero(), 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(kTestSeed);
  constexpr uint64_t kBound = 10;
  constexpr int64_t kTrials = 100000;
  std::vector<int64_t> counts(kBound, 0);
  for (int64_t i = 0; i < kTrials; ++i) counts[rng.UniformInt(kBound)]++;
  std::vector<double> expected(kBound, static_cast<double>(kTrials) / kBound);
  const double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, kBound - 1), 1e-4);
}

TEST(RngTest, UniformIntBoundOne) {
  Rng rng(kTestSeed);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(kTestSeed);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.Gaussian());
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.SampleVariance(), 1.0, 0.02);
  EXPECT_NEAR(m.ExcessKurtosis(), 0.0, 0.1);
}

TEST(RngTest, GaussianPassesKs) {
  Rng rng(kTestSeed);
  std::vector<double> samples(20000);
  for (double& v : samples) v = rng.Gaussian();
  const double d = KsStatistic(samples, [](double x) { return StdNormalCdf(x); });
  EXPECT_GT(KsPValue(d, static_cast<int64_t>(samples.size())), 1e-4);
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(kTestSeed);
  const double b = 1.7;
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.Laplace(b));
  EXPECT_NEAR(m.mean(), 0.0, 0.03);
  // Var = 2 b^2; excess kurtosis = 3.
  EXPECT_TRUE(NearRel(m.SampleVariance(), 2.0 * b * b, 0.03));
  EXPECT_NEAR(m.ExcessKurtosis(), 3.0, 0.35);
}

TEST(RngTest, LaplacePassesKs) {
  Rng rng(kTestSeed);
  const double b = 0.8;
  std::vector<double> samples(20000);
  for (double& v : samples) v = rng.Laplace(b);
  const double d = KsStatistic(samples, [b](double x) { return LaplaceCdf(x, b); });
  EXPECT_GT(KsPValue(d, static_cast<int64_t>(samples.size())), 1e-4);
}

TEST(RngTest, ExponentialMeanIsOne) {
  Rng rng(kTestSeed);
  OnlineMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.Exponential());
  EXPECT_TRUE(NearRel(m.mean(), 1.0, 0.02));
  EXPECT_TRUE(NearRel(m.SampleVariance(), 1.0, 0.05));
}

TEST(RngTest, RademacherIsBalanced) {
  Rng rng(kTestSeed);
  int64_t plus = 0;
  constexpr int64_t kTrials = 100000;
  for (int64_t i = 0; i < kTrials; ++i) plus += (rng.Rademacher() > 0);
  EXPECT_NEAR(static_cast<double>(plus) / kTrials, 0.5, 0.01);
}

TEST(RngTest, FillHelpersMatchScalarDraws) {
  Rng a(kTestSeed);
  Rng b(kTestSeed);
  std::vector<double> filled(64);
  a.FillGaussian(2.0, &filled);
  for (double v : filled) EXPECT_EQ(v, b.Gaussian(2.0));
  a.FillLaplace(1.5, &filled);
  for (double v : filled) EXPECT_EQ(v, b.Laplace(1.5));
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(kTestSeed);
  Rng b = a.Fork();
  int agree = 0;
  for (int i = 0; i < 64; ++i) agree += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(agree, 2);
}

TEST(SplitMixTest, DeriveSeedStreamsDiffer) {
  const uint64_t s1 = DeriveSeed(kTestSeed, 0);
  const uint64_t s2 = DeriveSeed(kTestSeed, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, DeriveSeed(kTestSeed, 0));
}

// --- Discrete samplers (Section 2.3.1 substrates) ---

TEST(DiscreteTest, BernoulliExpMatchesExp) {
  Rng rng(kTestSeed);
  for (double gamma : {0.0, 0.1, 0.5, 1.0, 1.7, 3.0}) {
    int64_t ones = 0;
    constexpr int64_t kTrials = 50000;
    for (int64_t i = 0; i < kTrials; ++i) {
      ones += SampleBernoulliExp(gamma, &rng);
    }
    const double p_hat = static_cast<double>(ones) / kTrials;
    EXPECT_NEAR(p_hat, std::exp(-gamma), 0.01) << "gamma=" << gamma;
  }
}

TEST(DiscreteTest, DiscreteLaplaceMomentsMatchClosedForm) {
  Rng rng(kTestSeed);
  for (double t : {0.5, 1.0, 3.0, 10.0}) {
    OnlineMoments m;
    for (int i = 0; i < 100000; ++i) {
      m.Add(static_cast<double>(SampleDiscreteLaplace(t, &rng)));
    }
    EXPECT_NEAR(m.mean(), 0.0, 0.1 * t) << "t=" << t;
    EXPECT_TRUE(NearRel(m.SampleVariance(), DiscreteLaplaceVariance(t), 0.05))
        << "t=" << t << " var=" << m.SampleVariance()
        << " want=" << DiscreteLaplaceVariance(t);
  }
}

TEST(DiscreteTest, DiscreteLaplaceVarianceApproachesContinuous) {
  // Var -> 2 t^2 from below as t grows.
  for (double t : {5.0, 20.0, 100.0}) {
    const double v = DiscreteLaplaceVariance(t);
    EXPECT_LT(v, 2.0 * t * t);
    EXPECT_GT(v, 2.0 * t * t * 0.9);
  }
}

TEST(DiscreteTest, DiscreteLaplacePmfRatioIsExpMinusOneOverT) {
  // P[X = x+1] / P[X = x] = e^{-1/t} for x >= 0: checked via bin counts.
  Rng rng(kTestSeed);
  const double t = 2.0;
  std::vector<int64_t> counts(8, 0);
  constexpr int64_t kTrials = 400000;
  for (int64_t i = 0; i < kTrials; ++i) {
    const int64_t x = SampleDiscreteLaplace(t, &rng);
    if (x >= 0 && x < static_cast<int64_t>(counts.size())) counts[x]++;
  }
  const double want = std::exp(-1.0 / t);
  for (size_t x = 0; x + 1 < counts.size(); ++x) {
    const double ratio =
        static_cast<double>(counts[x + 1]) / static_cast<double>(counts[x]);
    EXPECT_NEAR(ratio, want, 0.05) << "x=" << x;
  }
}

TEST(DiscreteTest, DiscreteGaussianVarianceAtMostSigmaSq) {
  Rng rng(kTestSeed);
  for (double sigma : {0.7, 1.0, 2.5, 8.0}) {
    OnlineMoments m;
    for (int i = 0; i < 60000; ++i) {
      m.Add(static_cast<double>(SampleDiscreteGaussian(sigma, &rng)));
    }
    EXPECT_NEAR(m.mean(), 0.0, 0.05 * sigma + 0.02) << "sigma=" << sigma;
    // CKS: Var[discrete gaussian] <= sigma^2; allow MC slack upward.
    EXPECT_LT(m.SampleVariance(), sigma * sigma * 1.05) << "sigma=" << sigma;
    // And it should not be wildly smaller either (within 15% for sigma >= 1).
    if (sigma >= 1.0) {
      EXPECT_GT(m.SampleVariance(), sigma * sigma * 0.85) << "sigma=" << sigma;
    }
  }
}

TEST(DiscreteTest, DiscreteGaussianMatchesAnalyticMoments) {
  Rng rng(kTestSeed);
  const double sigma = 3.0;
  const NoiseDistribution dist = NoiseDistribution::DiscreteGaussian(sigma);
  OnlineMoments m;
  for (int i = 0; i < 120000; ++i) {
    m.Add(static_cast<double>(SampleDiscreteGaussian(sigma, &rng)));
  }
  EXPECT_TRUE(NearRel(m.SampleVariance(), dist.SecondMoment(), 0.03));
  EXPECT_TRUE(NearRel(m.FourthCentralMoment(), dist.FourthMoment(), 0.06));
}

TEST(DiscreteTest, CenteredBinomialMomentsMatch) {
  Rng rng(kTestSeed);
  for (int64_t n : {2, 64, 130, 1024}) {
    OnlineMoments m;
    for (int i = 0; i < 50000; ++i) {
      m.Add(static_cast<double>(SampleCenteredBinomial(n, &rng)));
    }
    EXPECT_NEAR(m.mean(), 0.0, 0.05 * std::sqrt(static_cast<double>(n)));
    EXPECT_TRUE(NearRel(m.SampleVariance(), static_cast<double>(n) / 4.0, 0.05))
        << "n=" << n;
  }
}

// --- k-wise independent hashing ---

TEST(KwiseHashTest, DeterministicPerSeed) {
  KwiseHash h1(4, kTestSeed);
  KwiseHash h2(4, kTestSeed);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1.Eval(x), h2.Eval(x));
}

TEST(KwiseHashTest, OutputsBelowPrime) {
  KwiseHash h(8, kTestSeed);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Eval(x), KwiseHash::kPrime);
}

TEST(KwiseHashTest, RangeOutputsUniform) {
  KwiseHash h(8, kTestSeed + 3);
  constexpr uint64_t kRange = 16;
  constexpr int64_t kKeys = 160000;
  std::vector<int64_t> counts(kRange, 0);
  for (int64_t x = 0; x < kKeys; ++x) {
    counts[h.EvalRange(static_cast<uint64_t>(x), kRange)]++;
  }
  std::vector<double> expected(kRange, static_cast<double>(kKeys) / kRange);
  const double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, kRange - 1), 1e-4);
}

TEST(KwiseHashTest, SignsBalanced) {
  KwiseHash h(8, kTestSeed + 4);
  double sum = 0.0;
  constexpr int64_t kKeys = 100000;
  for (int64_t x = 0; x < kKeys; ++x) sum += h.EvalSign(static_cast<uint64_t>(x));
  EXPECT_NEAR(sum / kKeys, 0.0, 0.02);
}

TEST(KwiseHashTest, PairwiseIndependenceOfSigns) {
  // For w >= 2, sign(x) * sign(y) should be balanced across key pairs.
  KwiseHash h(8, kTestSeed + 5);
  double sum = 0.0;
  constexpr int64_t kPairs = 50000;
  for (int64_t x = 0; x < kPairs; ++x) {
    sum += h.EvalSign(static_cast<uint64_t>(x)) *
           h.EvalSign(static_cast<uint64_t>(x + kPairs));
  }
  EXPECT_NEAR(sum / kPairs, 0.0, 0.02);
}

TEST(KwiseHashTest, FourWiseSignProductBalanced) {
  // Degree >= 4 family: the product of four distinct-key signs is unbiased.
  KwiseHash h(8, kTestSeed + 6);
  double sum = 0.0;
  constexpr int64_t kQuads = 50000;
  for (int64_t x = 0; x < kQuads; ++x) {
    sum += h.EvalSign(static_cast<uint64_t>(4 * x)) *
           h.EvalSign(static_cast<uint64_t>(4 * x + 1)) *
           h.EvalSign(static_cast<uint64_t>(4 * x + 2)) *
           h.EvalSign(static_cast<uint64_t>(4 * x + 3));
  }
  EXPECT_NEAR(sum / kQuads, 0.0, 0.02);
}

TEST(KwiseHashTest, WiseOneIsConstant) {
  KwiseHash h(1, kTestSeed);
  const uint64_t v = h.Eval(0);
  for (uint64_t x = 1; x < 50; ++x) EXPECT_EQ(h.Eval(x), v);
}

}  // namespace
}  // namespace dpjl
