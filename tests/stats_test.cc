#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/random/rng.h"
#include "src/stats/gof.h"
#include "src/stats/histogram.h"
#include "src/stats/welford.h"
#include "tests/test_util.h"

namespace dpjl {
namespace {

using testing::kTestSeed;
using testing::NearRel;

TEST(WelfordTest, MatchesNaiveMoments) {
  Rng rng(kTestSeed);
  std::vector<double> xs(5000);
  for (double& v : xs) v = rng.Laplace(1.0) + 3.0;

  OnlineMoments m;
  for (double v : xs) m.Add(v);

  double mean = 0.0;
  for (double v : xs) mean += v;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  double m4 = 0.0;
  for (double v : xs) {
    m2 += (v - mean) * (v - mean);
    m4 += std::pow(v - mean, 4);
  }
  const double naive_var = m2 / static_cast<double>(xs.size() - 1);
  const double naive_m4 = m4 / static_cast<double>(xs.size());

  EXPECT_TRUE(NearRel(m.mean(), mean, 1e-12));
  EXPECT_TRUE(NearRel(m.SampleVariance(), naive_var, 1e-10));
  EXPECT_TRUE(NearRel(m.FourthCentralMoment(), naive_m4, 1e-9));
}

TEST(WelfordTest, CountMinMax) {
  OnlineMoments m;
  m.Add(3.0);
  m.Add(-1.0);
  m.Add(7.0);
  EXPECT_EQ(m.count(), 3);
  EXPECT_DOUBLE_EQ(m.min(), -1.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.0);
}

TEST(WelfordTest, EmptyAndSingleton) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.SampleVariance(), 0.0);
  m.Add(5.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.SampleVariance(), 0.0);
  EXPECT_DOUBLE_EQ(m.StandardError(), 0.0);
}

TEST(WelfordTest, MergeMatchesSequential) {
  Rng rng(kTestSeed);
  OnlineMoments all;
  OnlineMoments part1;
  OnlineMoments part2;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.Gaussian() * 2.0 + 1.0;
    all.Add(v);
    (i % 2 == 0 ? part1 : part2).Add(v);
  }
  part1.Merge(part2);
  EXPECT_EQ(part1.count(), all.count());
  EXPECT_TRUE(NearRel(part1.mean(), all.mean(), 1e-12));
  EXPECT_TRUE(NearRel(part1.SampleVariance(), all.SampleVariance(), 1e-10));
  EXPECT_TRUE(
      NearRel(part1.FourthCentralMoment(), all.FourthCentralMoment(), 1e-9));
}

TEST(WelfordTest, MergeWithEmpty) {
  OnlineMoments a;
  a.Add(1.0);
  a.Add(2.0);
  OnlineMoments b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(WelfordTest, GaussianKurtosisNearZero) {
  Rng rng(kTestSeed);
  OnlineMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.Gaussian());
  EXPECT_NEAR(m.ExcessKurtosis(), 0.0, 0.1);
}

TEST(GofTest, KsAcceptsCorrectDistribution) {
  Rng rng(kTestSeed);
  std::vector<double> xs(5000);
  for (double& v : xs) v = rng.Gaussian();
  const double d = KsStatistic(xs, [](double x) { return StdNormalCdf(x); });
  EXPECT_GT(KsPValue(d, 5000), 0.001);
}

TEST(GofTest, KsRejectsShiftedDistribution) {
  Rng rng(kTestSeed);
  std::vector<double> xs(5000);
  for (double& v : xs) v = rng.Gaussian() + 0.5;
  const double d = KsStatistic(xs, [](double x) { return StdNormalCdf(x); });
  EXPECT_LT(KsPValue(d, 5000), 1e-6);
}

TEST(GofTest, ChiSquareAcceptsUniformCounts) {
  Rng rng(kTestSeed);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[rng.UniformInt(10)]++;
  const std::vector<double> expected(10, 10000.0);
  EXPECT_GT(ChiSquarePValue(ChiSquareStatistic(counts, expected), 9), 0.001);
}

TEST(GofTest, ChiSquareRejectsSkewedCounts) {
  std::vector<int64_t> counts = {5000, 1000, 1000, 1000, 1000, 1000};
  const std::vector<double> expected(6, 10000.0 / 6.0);
  EXPECT_LT(ChiSquarePValue(ChiSquareStatistic(counts, expected), 5), 1e-10);
}

TEST(GofTest, CdfSanity) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(LaplaceCdf(0.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(LaplaceCdf(2.0, 2.0) + LaplaceCdf(-2.0, 2.0), 1.0, 1e-12);
}

TEST(GofTest, ChiSquarePValueMonotoneInStatistic) {
  EXPECT_GT(ChiSquarePValue(1.0, 5), ChiSquarePValue(10.0, 5));
  EXPECT_GT(ChiSquarePValue(10.0, 5), ChiSquarePValue(50.0, 5));
}

TEST(GofTest, ChiSquareReferenceQuantiles) {
  // Textbook 5% critical values: chi2(0.95; dof).
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 0.002);
  EXPECT_NEAR(ChiSquarePValue(5.991, 2), 0.05, 0.002);
  EXPECT_NEAR(ChiSquarePValue(18.307, 10), 0.05, 0.002);
  // chi2 with dof=2 is Exponential(1/2): P[X >= x] = e^{-x/2} exactly.
  EXPECT_NEAR(ChiSquarePValue(4.0, 2), std::exp(-2.0), 1e-9);
}

TEST(GofTest, KsPValueExtremes) {
  EXPECT_GT(KsPValue(1e-6, 1000), 0.999);
  EXPECT_LT(KsPValue(0.5, 1000), 1e-12);
}

TEST(HistogramTest, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(1.9);   // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bins(), 5);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(3), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(HistogramTest, BinLeftEdges) {
  Histogram h(-2.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.BinLeft(0), -2.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(2), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(3), 1.0);
}

TEST(HistogramTest, UniformDataFillsUniformly) {
  Rng rng(kTestSeed);
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble());
  std::vector<double> expected(10, 10000.0);
  EXPECT_GT(ChiSquarePValue(ChiSquareStatistic(h.counts(), expected), 9), 1e-4);
}

}  // namespace
}  // namespace dpjl
