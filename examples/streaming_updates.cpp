// Streaming sketch maintenance — Theorem 3(4)'s O(s) per-update cost in a
// telemetry-style deployment, served through the Engine facade.
//
// Several edge devices observe event streams over a huge key space. Each
// maintains a running SJLT sketch (updating s = O(alpha^-1 log 1/beta)
// counters per event, never materializing the d-dimensional histogram)
// against the engine's shared public projection and periodically releases
// a private snapshot. The collector ingests the snapshots into the
// engine's index and estimates pairwise divergence between devices there,
// while tracking the cumulative privacy spend of repeated releases.
//
// Build & run:  ./build/examples/streaming_updates

#include <iostream>
#include <string>
#include <vector>

#include "src/common/table_printer.h"
#include "src/common/timer.h"
#include "src/core/engine.h"
#include "src/core/streaming.h"
#include "src/dp/accountant.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 1 << 20;  // 1M event keys; never materialized densely
  const int64_t n_devices = 3;
  const int64_t events_per_epoch = 50000;
  const int64_t n_epochs = 2;

  EngineOptions options;
  options.sketcher.k_override = 512;
  options.sketcher.s_override = 16;
  options.sketcher.epsilon = 0.5;  // per release
  options.sketcher.projection_seed = 0xFEED;

  auto engine_result = Engine::Create(d, options);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status() << "\n";
    return 1;
  }
  Engine& engine = **engine_result;
  std::cout << "construction: " << engine.sketcher().Describe() << "\n"
            << "key space d = " << d << ", sketch k = "
            << engine.sketcher().output_dim()
            << ", update touches s = 16 counters\n\n";

  // Devices 0 and 1 sample similar traffic; device 2 diverges. Every
  // device streams against the engine's sketcher (one shared projection).
  std::vector<StreamingSketcher> devices;
  std::vector<PrivacyAccountant> accountants(n_devices);
  for (int64_t dev = 0; dev < n_devices; ++dev) {
    devices.push_back(
        StreamingSketcher::Create(&engine.sketcher(), /*noise_seed=*/7000 + dev)
            .value());
  }

  Rng shared(11);
  Rng divergent(222);
  Timer update_timer;
  int64_t total_updates = 0;
  for (int64_t epoch = 0; epoch < n_epochs; ++epoch) {
    for (int64_t e = 0; e < events_per_epoch; ++e) {
      // Devices 0/1: same hot-key distribution (Zipf over a window).
      for (int64_t dev = 0; dev < 2; ++dev) {
        const int64_t key =
            static_cast<int64_t>(shared.UniformInt(1 << 16)) * (dev == 0 ? 1 : 1);
        devices[dev].Update(key, 1.0);
      }
      // Device 2: different region of the key space.
      devices[2].Update((1 << 19) + static_cast<int64_t>(
                                        divergent.UniformInt(1 << 16)),
                        1.0);
      total_updates += 3;
    }

    // Epoch release: each device publishes a snapshot into the engine's
    // index (released artifacts only — safe at an untrusted collector)
    // and accounts for it.
    std::vector<std::pair<std::string, PrivateSketch>> snapshots;
    for (int64_t dev = 0; dev < n_devices; ++dev) {
      snapshots.emplace_back(
          "e" + std::to_string(epoch) + "-dev" + std::to_string(dev),
          devices[dev].Finalize());
      accountants[dev].Record(
          PrivacyParams{snapshots.back().second.metadata().epsilon,
                        snapshots.back().second.metadata().delta});
    }
    DPJL_CHECK_OK(engine.InsertBatch(std::move(snapshots)));

    std::cout << "epoch " << epoch
              << " pairwise estimated ||hist_i - hist_j||^2:\n";
    TablePrinter table({"pair", "estimate"});
    for (int64_t i = 0; i < n_devices; ++i) {
      for (int64_t j = i + 1; j < n_devices; ++j) {
        const std::string id_i =
            "e" + std::to_string(epoch) + "-dev" + std::to_string(i);
        const std::string id_j =
            "e" + std::to_string(epoch) + "-dev" + std::to_string(j);
        table.AddRow(
            {"dev" + std::to_string(i) + " vs dev" + std::to_string(j),
             Fmt(engine.SquaredDistance(id_i, id_j).value(), 0)});
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  const double us_per_update =
      update_timer.ElapsedSeconds() * 1e6 / static_cast<double>(total_updates);
  std::cout << "update cost: " << Fmt(us_per_update, 3)
            << " us/event (includes stream generation)\n";
  std::cout << "collector index: " << engine.index_size()
            << " released snapshots across " << n_epochs << " epochs\n";
  std::cout << "cumulative privacy per device after " << n_epochs
            << " releases (basic composition): eps = "
            << accountants[0].BasicComposition().epsilon << "\n";
  std::cout << "\nExpected: dev0-dev1 divergence is far below dev*-dev2 "
               "(disjoint key regions);\nupdates cost microseconds despite "
               "d = 1M; repeated releases compose linearly.\n";
  return 0;
}
