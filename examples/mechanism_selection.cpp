// Mechanism selection in practice — Note 5 of the paper as a library
// feature.
//
// Given a privacy budget (eps, delta), should a deployment add Laplace or
// Gaussian noise to its SJLT sketches? The sketcher answers automatically
// (NoiseSelection::kAuto); this example sweeps budgets and prints the
// decision, the resulting guarantee, and the predicted estimator standard
// error for a reference workload — including the exact fourth-moment-aware
// rule where it differs from the paper's first-order one.
//
// Build & run:  ./build/examples/mechanism_selection

#include <cmath>
#include <iostream>

#include "src/common/table_printer.h"
#include "src/core/engine.h"
#include "src/core/variance_model.h"
#include "src/jl/dims.h"

int main() {
  using namespace dpjl;

  const int64_t d = 8192;
  const double alpha = 0.1;
  const double beta = 0.05;
  const double ref_dist_sq = 25.0;  // reference ||x - y||^2 for error column

  const int64_t s = KaneNelsonSparsity(alpha, beta).value();
  std::cout << "SJLT sensitivities: Delta_1 = sqrt(s) = " << Fmt(std::sqrt((double)s), 3)
            << ", Delta_2 = 1  (s = " << s << ")\n"
            << "Note 5 crossover: Laplace preferred when delta < e^{-s} = "
            << FmtSci(std::exp(-static_cast<double>(s))) << "\n\n";

  TablePrinter table({"eps", "delta", "auto_choice", "guarantee",
                      "pred_stderr", "note5_says", "exact_rule_says"});
  for (double eps : {0.5, 2.0}) {
    for (double delta : {0.0, 1e-6, 1e-9, 1e-20, 1e-40}) {
      // One facade per budget: the engine owns the sketcher whose
      // automatic mechanism choice the row reports.
      EngineOptions options;
      options.sketcher.alpha = alpha;
      options.sketcher.beta = beta;
      options.sketcher.epsilon = eps;
      options.sketcher.delta = delta;
      options.sketcher.projection_seed = 0xD0;
      auto engine = Engine::Create(d, options);
      if (!engine.ok()) {
        std::cerr << engine.status() << "\n";
        return 1;
      }
      const PrivateSketcher& sketcher = (*engine)->sketcher();
      const auto& mech = sketcher.mechanism();
      const double stderr_pred =
          std::sqrt(sketcher.PredictVariance(ref_dist_sq, 1.0).total());
      const Sensitivities sens = sketcher.transform().ExactSensitivities();
      const std::string note5 =
          delta == 0.0 ? "laplace (forced)"
                       : (LaplacePreferred(sens, delta) ? "laplace" : "gaussian");
      const std::string exact =
          delta == 0.0
              ? "laplace (forced)"
              : (LaplacePreferredExact(sketcher.transform(), eps, delta,
                                       ref_dist_sq, 1.0)
                     ? "laplace"
                     : "gaussian");
      table.AddRow({Fmt(eps, 1), delta == 0.0 ? "0" : FmtSci(delta),
                    mech.distribution().Name(), mech.params().ToString(),
                    Fmt(stderr_pred, 1), note5, exact});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nReading: with delta = 0 only Laplace applies (and yields pure\n"
         "DP, the paper's headline side-effect). For moderate delta the\n"
         "Gaussian mechanism needs less noise; once delta drops below\n"
         "~e^{-s}, Laplace wins and is chosen automatically. The exact rule\n"
         "differs from Note 5 only in a narrow window near the crossover\n"
         "(see bench_e4).\n";
  return 0;
}
