// Distributed serving end to end, in one process: four serving engines on
// real loopback sockets, a manifest-routed Router in front, and a kill to
// prove replica failover — the same topology `dpjl_tool serve` + `route`
// run as separate processes.
//
//   1. build a corpus, export 4 partition snapshots + the shard manifest,
//   2. start one Server per partition (plus a replica for group 1), each
//      over its own Engine loaded from the partition blob,
//   3. route a nearest-neighbor query through the Router and compare it
//      entry for entry against the monolithic index — the distributed
//      tier's core guarantee is byte-identity,
//   4. stop group 1's primary mid-run: the router fails over to the
//      replica and the answer stays byte-identical,
//   5. stop the replica too: the query fails with a clean `unavailable`,
//      never a partial answer.
//
// Build & run:  ./build/examples/distributed_serving

#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/net/router.h"
#include "src/net/server.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 512;
  const int64_t corpus_size = 60;
  const int partitions = 4;

  EngineOptions options;
  // Low-noise budget so the ranking below is visibly sensible; the
  // byte-identity of routed results holds at any epsilon.
  options.sketcher.epsilon = 30.0;
  options.sketcher.projection_seed = 0xE14;  // public, shared by all servers
  options.threads = 2;

  // --- 1. corpus + partition export (see partitioned_corpus.cpp for the
  // persistence story; here the partitions feed serving processes).
  auto reference = Engine::Create(d, options);
  if (!reference.ok()) {
    std::cerr << reference.status() << "\n";
    return 1;
  }
  Rng rng(0xE14);
  std::vector<std::vector<double>> vectors;
  for (int64_t i = 0; i < corpus_size; ++i) {
    vectors.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  auto sketches = (*reference)->SketchBatch(vectors, /*base_noise_seed=*/777);
  if (!sketches.ok()) {
    std::cerr << sketches.status() << "\n";
    return 1;
  }
  std::vector<std::pair<std::string, PrivateSketch>> items;
  for (int64_t i = 0; i < corpus_size; ++i) {
    items.emplace_back("doc" + std::to_string(i),
                       std::move((*sketches)[static_cast<size_t>(i)]));
  }
  if (auto added = (*reference)->InsertBatch(std::move(items)); !added.ok()) {
    std::cerr << added << "\n";
    return 1;
  }
  auto monolithic = SketchIndex::Deserialize((*reference)->SerializeIndex());
  if (!monolithic.ok()) {
    std::cerr << monolithic.status() << "\n";
    return 1;
  }
  auto exported = monolithic->ExportPartitions(partitions);
  if (!exported.ok()) {
    std::cerr << exported.status() << "\n";
    return 1;
  }

  // --- 2. one serving process per partition: Engine over the partition
  // snapshot behind a blocking-socket Server on an ephemeral loopback
  // port. Group 1 gets a second replica — the failover subject below.
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<std::vector<net::Endpoint>> groups(partitions);
  auto start_replica = [&](int group) -> bool {
    auto part = SketchIndex::Deserialize(exported->partitions[group]);
    if (!part.ok()) {
      std::cerr << part.status() << "\n";
      return false;
    }
    auto engine = Engine::FromIndex(std::move(part).value(), options);
    if (!engine.ok()) {
      std::cerr << engine.status() << "\n";
      return false;
    }
    engines.push_back(std::move(engine).value());
    auto server = net::Server::Start(engines.back().get(), {});
    if (!server.ok()) {
      std::cerr << server.status() << "\n";
      return false;
    }
    groups[group].push_back({(*server)->host(), (*server)->port()});
    servers.push_back(std::move(server).value());
    return true;
  };
  for (int p = 0; p < partitions; ++p) {
    if (!start_replica(p)) return 1;
  }
  const size_t group1_primary = 1;   // servers[1] serves partition 1 first
  if (!start_replica(1)) return 1;   // ... and servers[4] is its replica
  for (int p = 0; p < partitions; ++p) {
    std::cout << "group " << p << ": " << groups[p].size() << " replica(s), "
              << exported->manifest.partitions[p].count << " sketches ["
              << exported->manifest.partitions[p].first_id << " .. "
              << exported->manifest.partitions[p].last_id << "]\n";
  }

  // --- 3. the router fans out to one replica per group and merges by the
  // deterministic (distance, id) order — byte-identical to the monolith.
  auto router = net::Router::Create(exported->manifest, groups);
  if (!router.ok()) {
    std::cerr << router.status() << "\n";
    return 1;
  }
  const PrivateSketch probe = (*reference)->Sketch(vectors[7], 999);
  auto direct = monolithic->NearestNeighbors(probe, 5);
  if (!direct.ok()) {
    std::cerr << direct.status() << "\n";
    return 1;
  }
  auto check_routed = [&](const std::string& label) -> bool {
    auto routed = (*router)->NearestNeighbors(probe, 5);
    if (!routed.ok()) {
      std::cerr << label << ": " << routed.status() << "\n";
      return false;
    }
    bool identical = routed->size() == direct->size();
    for (size_t i = 0; identical && i < routed->size(); ++i) {
      identical = (*routed)[i].id == (*direct)[i].id &&
                  (*routed)[i].squared_distance ==
                      (*direct)[i].squared_distance;
    }
    std::cout << label << ": top-" << routed->size() << " "
              << (identical ? "byte-identical to the monolithic index"
                            : "DIFFERS (bug!)")
              << "\n";
    return identical;
  };
  if (!check_routed("routed 4-server query")) return 1;

  // --- 4. kill group 1's primary: round-robin skips the dead replica on
  // `unavailable` and the merged answer does not change by a byte.
  servers[group1_primary]->Stop();
  if (!check_routed("after primary of group 1 stopped")) return 1;

  // --- 5. kill the replica too: with no live replica for a needed group
  // the call fails with a clean `unavailable` — never a partial answer.
  servers.back()->Stop();
  auto down = (*router)->NearestNeighbors(probe, 5);
  std::cout << "after the whole group died: "
            << (down.ok() ? "answered anyway (bug!)" : down.status().ToString())
            << "\n";
  if (down.ok() || down.status().code() != StatusCode::kUnavailable) return 1;

  for (auto& server : servers) server->Stop();
  return 0;
}
