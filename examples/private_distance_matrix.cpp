// All-pairs private distance matrix with a simultaneous guarantee — the
// JL Flattening Lemma (the paper's introduction) under differential
// privacy.
//
// n parties each publish one sketch. To make the (1 +- alpha) distortion
// hold for ALL C(n,2) pairs simultaneously with probability 1 - beta, the
// shared projection is calibrated at per-pair failure probability
// beta / C(n,2), i.e. k = Theta(alpha^-2 log(n^2/beta)) — still independent
// of the data dimension. The example builds the full matrix through the
// dpjl::Engine facade (sketch, insert, pool-parallel AllPairsDistances)
// and reports the worst pairwise deviation against the target.
//
// Build & run:  ./build/examples/private_distance_matrix

#include <cmath>
#include <iostream>
#include <string>

#include "src/common/table_printer.h"
#include "src/core/engine.h"
#include "src/core/flattening.h"
#include "src/jl/dims.h"
#include "src/linalg/vector_ops.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 4096;
  const int64_t n = 24;  // parties
  const double alpha = 0.2;
  const double beta = 0.05;
  const double epsilon = 8.0;

  const int64_t k_single = OutputDimension(alpha, beta).value();
  const int64_t k_all_pairs = FlatteningOutputDimension(n, alpha, beta).value();

  std::cout << "single-pair k = " << k_single
            << "  ->  all-pairs (n = " << n << ") k = " << k_all_pairs
            << "   (union bound over " << n * (n - 1) / 2 << " pairs)\n";

  EngineOptions options;
  options.sketcher.alpha = alpha;
  options.sketcher.beta = beta;
  options.sketcher.k_override = k_all_pairs;
  options.sketcher.epsilon = epsilon;
  options.sketcher.projection_seed = 0xA11;
  options.threads = 4;  // row-parallel all-pairs scan
  auto engine = Engine::Create(d, options);
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }
  std::cout << "construction: " << (*engine)->sketcher().Describe() << "\n\n";

  // Parties hold points at interesting mutual distances; each publishes
  // one sketch into the engine's index.
  Rng rng(31);
  std::vector<std::vector<double>> points;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> p = DenseGaussianVector(d, 1.0, &rng);
    Scale(1.0 + 0.2 * static_cast<double>(i % 5), &p);
    DPJL_CHECK_OK(
        (*engine)->InsertVector("party" + std::to_string(i), p, 500 + i));
    points.push_back(std::move(p));
  }

  const SketchIndex::DistanceMatrix estimated =
      (*engine)->AllPairsDistances().value();

  // Worst-case relative deviation over all pairs (noise floor removed from
  // the denominator by using the true distance, which is large here).
  double worst_rel = 0.0;
  double mean_rel = 0.0;
  int64_t pairs = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double truth = SquaredDistance(points[i], points[j]);
      const double rel = std::fabs(estimated.at(i, j) - truth) / truth;
      worst_rel = std::max(worst_rel, rel);
      mean_rel += rel;
      ++pairs;
    }
  }
  mean_rel /= static_cast<double>(pairs);

  TablePrinter table({"metric", "value"});
  table.AddRow({"pairs", Fmt(pairs)});
  table.AddRow({"mean relative error", Fmt(mean_rel, 4)});
  table.AddRow({"worst relative error", Fmt(worst_rel, 4)});
  table.AddRow({"alpha target (per pair)", Fmt(alpha, 2)});
  table.AddRow({"per-sketch privacy", "eps = " + Fmt(epsilon, 1) + " (pure)"});
  table.Print(std::cout);
  std::cout << "\nExpected: worst relative error around (and usually below)\n"
               "alpha across all pairs simultaneously — the flattening\n"
               "calibration absorbs the union bound; the DP noise adds a\n"
               "small extra deviation on top at this budget.\n";
  return 0;
}
