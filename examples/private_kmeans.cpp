// Private k-means clustering on sketched data — the dimensionality-
// reduction-for-clustering application from the paper's introduction
// (Boutsidis et al. / Cohen et al. line of work), run under differential
// privacy.
//
// Each party publishes one DP sketch of its point. An untrusted analyst
// runs Lloyd's algorithm entirely in sketch space (distances between
// sketches and sketch-space centroids). The example compares clustering
// quality against non-private k-means on the raw points.
//
// Build & run:  ./build/examples/private_kmeans

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "src/common/table_printer.h"
#include "src/core/engine.h"
#include "src/linalg/vector_ops.h"
#include "src/workload/generators.h"

namespace {

using namespace dpjl;

// Within-cluster sum of squares for a labeling.
double Wcss(const std::vector<std::vector<double>>& points,
            const std::vector<int64_t>& labels, int64_t n_clusters) {
  const size_t dim = points.front().size();
  std::vector<std::vector<double>> sums(n_clusters, std::vector<double>(dim, 0.0));
  std::vector<int64_t> counts(n_clusters, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    Axpy(1.0, points[i], &sums[labels[i]]);
    counts[labels[i]]++;
  }
  for (int64_t c = 0; c < n_clusters; ++c) {
    if (counts[c] > 0) Scale(1.0 / static_cast<double>(counts[c]), &sums[c]);
  }
  double cost = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    cost += SquaredDistance(points[i], sums[labels[i]]);
  }
  return cost;
}

// Plain Lloyd's algorithm; returns labels. Works in whatever space the
// points live in (raw or sketch).
std::vector<int64_t> Lloyd(const std::vector<std::vector<double>>& points,
                           int64_t n_clusters, int64_t iterations, Rng* rng) {
  const size_t dim = points.front().size();
  // Initialize centers on random distinct points.
  std::vector<std::vector<double>> centers;
  for (int64_t c = 0; c < n_clusters; ++c) {
    centers.push_back(points[rng->UniformInt(points.size())]);
  }
  std::vector<int64_t> labels(points.size(), 0);
  for (int64_t iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (int64_t c = 0; c < n_clusters; ++c) {
        const double dist = SquaredDistance(points[i], centers[c]);
        if (dist < best) {
          best = dist;
          labels[i] = c;
        }
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(n_clusters,
                                          std::vector<double>(dim, 0.0));
    std::vector<int64_t> counts(n_clusters, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      Axpy(1.0, points[i], &sums[labels[i]]);
      counts[labels[i]]++;
    }
    for (int64_t c = 0; c < n_clusters; ++c) {
      if (counts[c] > 0) {
        Scale(1.0 / static_cast<double>(counts[c]), &sums[c]);
        centers[c] = sums[c];
      }
    }
  }
  return labels;
}

// Best-of-n restarts by within-cluster cost (standard k-means practice;
// a single Lloyd run is too initialization-sensitive for a comparison).
std::vector<int64_t> LloydRestarts(const std::vector<std::vector<double>>& points,
                                   int64_t n_clusters, int64_t iterations,
                                   int64_t restarts, uint64_t seed) {
  std::vector<int64_t> best_labels;
  double best_cost = std::numeric_limits<double>::max();
  for (int64_t r = 0; r < restarts; ++r) {
    Rng rng(seed + static_cast<uint64_t>(r));
    std::vector<int64_t> labels = Lloyd(points, n_clusters, iterations, &rng);
    const double cost = Wcss(points, labels, n_clusters);
    if (cost < best_cost) {
      best_cost = cost;
      best_labels = std::move(labels);
    }
  }
  return best_labels;
}

// Clustering accuracy under the best greedy cluster->label matching.
double Purity(const std::vector<int64_t>& labels,
              const std::vector<int64_t>& truth, int64_t n_clusters) {
  double correct = 0.0;
  for (int64_t c = 0; c < n_clusters; ++c) {
    std::vector<int64_t> votes(n_clusters, 0);
    int64_t members = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == c) {
        votes[truth[i]]++;
        ++members;
      }
    }
    if (members > 0) {
      correct += static_cast<double>(*std::max_element(votes.begin(), votes.end()));
    }
  }
  return correct / static_cast<double>(labels.size());
}

}  // namespace

int main() {
  const int64_t d = 2048;
  const int64_t n_points = 300;
  const int64_t n_clusters = 6;

  // The engine facade owns the sketcher (and the thread pool the batch
  // path fans out on); no hand-wired construction.
  EngineOptions options;
  options.sketcher.alpha = 0.15;
  options.sketcher.beta = 0.05;
  options.sketcher.epsilon = 3.0;
  options.sketcher.projection_seed = 0xC1A55;
  options.threads = 2;

  auto engine_result = Engine::Create(d, options);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status() << "\n";
    return 1;
  }
  Engine& engine = **engine_result;
  std::cout << "construction: " << engine.sketcher().Describe() << "\n";

  Rng rng(7);
  const ClusteredData data = MakeClusters(n_points, d, n_clusters,
                                          /*center_scale=*/1.0,
                                          /*spread=*/0.6, &rng);

  // Each party publishes one sketch (the engine's batch path derives
  // per-item noise seeds from one base seed); the analyst clusters the
  // sketches.
  const auto released = engine.SketchBatch(data.points, /*base_noise_seed=*/500);
  DPJL_CHECK(released.ok(), released.status().ToString());
  std::vector<std::vector<double>> sketch_space;
  sketch_space.reserve(released->size());
  for (const PrivateSketch& sketch : *released) {
    sketch_space.push_back(sketch.values());
  }

  const std::vector<int64_t> private_labels = LloydRestarts(
      sketch_space, n_clusters, /*iterations=*/10, /*restarts=*/5, 99);
  const std::vector<int64_t> raw_labels = LloydRestarts(
      data.points, n_clusters, /*iterations=*/10, /*restarts=*/5, 99);

  TablePrinter table({"pipeline", "space_dim", "purity_vs_ground_truth"});
  table.AddRow({"non-private k-means (raw)", Fmt(d),
                Fmt(Purity(raw_labels, data.labels, n_clusters), 3)});
  table.AddRow({"private k-means (DP sketches)",
                Fmt(engine.sketcher().output_dim()),
                Fmt(Purity(private_labels, data.labels, n_clusters), 3)});
  table.Print(std::cout);
  std::cout << "\nThe private pipeline clusters " << n_points
            << " points it never saw in the clear: each point entered as a\n"
            << "single eps = " << options.sketcher.epsilon
            << " pure-DP sketch.\n";
  return 0;
}
