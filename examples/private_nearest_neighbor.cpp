// Private approximate nearest-neighbor search — the application class the
// paper's introduction leads with, served through the dpjl::Engine facade.
//
// A fleet of parties each hold a private user-activity histogram. Every
// party publishes one DP sketch to an untrusted directory (the engine's
// index). A querying party then finds its nearest neighbors *from sketches
// alone*; queries are submitted through the engine's async API, the way a
// serving deployment would fan in concurrent callers. The example measures
// recall against exact (non-private) search.
//
// Build & run:  ./build/examples/private_nearest_neighbor

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table_printer.h"
#include "src/core/engine.h"
#include "src/linalg/vector_ops.h"
#include "src/workload/generators.h"

namespace {

using namespace dpjl;

// Exact top-n ids by true squared distance.
std::vector<std::string> ExactTopN(const std::vector<std::vector<double>>& corpus,
                                   const std::vector<double>& query, int64_t n) {
  std::vector<std::pair<double, std::string>> scored;
  for (size_t i = 0; i < corpus.size(); ++i) {
    scored.emplace_back(SquaredDistance(corpus[i], query),
                        "user" + std::to_string(i));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> ids;
  for (int64_t i = 0; i < n && i < static_cast<int64_t>(scored.size()); ++i) {
    ids.push_back(scored[i].second);
  }
  return ids;
}

double Recall(const std::vector<std::string>& truth,
              const std::vector<SketchIndex::Neighbor>& found) {
  int64_t hits = 0;
  for (const auto& neighbor : found) {
    hits += std::count(truth.begin(), truth.end(), neighbor.id);
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  const int64_t d = 4096;     // histogram buckets
  const int64_t n_users = 200;
  const int64_t n_queries = 20;
  const int64_t top_n = 5;

  // One options struct instead of hand-wiring sketcher + pool + index.
  EngineOptions options;
  options.sketcher.alpha = 0.1;
  options.sketcher.beta = 0.05;
  options.sketcher.epsilon = 4.0;  // per released sketch, pure DP
  options.sketcher.projection_seed = 0x5EED;
  options.threads = 4;   // shard-parallel query scans
  options.num_shards = 8;

  auto engine = Engine::Create(d, options);
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }
  std::cout << "construction: " << (*engine)->sketcher().Describe() << "\n"
            << "engine config: " << options.ToString() << "\n";

  // Clustered population: users belong to behavioral groups, so nearest
  // neighbors are meaningful. The group separation (center_scale) must
  // clear the estimator's noise floor — distances below it are
  // indistinguishable by design (that is the privacy working).
  Rng rng(2026);
  ClusteredData population = MakeClusters(n_users + n_queries, d,
                                          /*clusters=*/40, /*center_scale=*/1.5,
                                          /*spread=*/0.3, &rng);

  // Directory of published sketches (first n_users points).
  std::vector<std::vector<double>> corpus(population.points.begin(),
                                          population.points.begin() + n_users);
  for (int64_t i = 0; i < n_users; ++i) {
    DPJL_CHECK_OK((*engine)->InsertVector("user" + std::to_string(i), corpus[i],
                                          /*noise_seed=*/1000 + i));
  }

  // Queries: the held-out points, all submitted up front — the engine's
  // serving threads drain them concurrently while we do nothing but wait.
  std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> pending;
  for (int64_t q = 0; q < n_queries; ++q) {
    const std::vector<double>& query = population.points[n_users + q];
    pending.push_back((*engine)->SubmitQuery(
        (*engine)->Sketch(query, /*noise_seed=*/9000 + q), top_n));
  }

  double recall1 = 0.0;
  double recall5 = 0.0;
  for (int64_t q = 0; q < n_queries; ++q) {
    const auto found = pending[static_cast<size_t>(q)].Get();
    DPJL_CHECK(found.ok(), found.status().ToString());
    const std::vector<double>& query = population.points[n_users + q];
    const std::vector<std::string> exact = ExactTopN(corpus, query, top_n);
    recall1 += ((*found)[0].id == exact[0]);
    recall5 += Recall(exact, *found);
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"corpus size", Fmt(n_users)});
  table.AddRow({"sketch dim k", Fmt((*engine)->sketcher().output_dim())});
  table.AddRow({"compression",
                FmtRatio(static_cast<double>(d) /
                         static_cast<double>((*engine)->sketcher().output_dim()))});
  table.AddRow({"recall@1", Fmt(recall1 / n_queries, 3)});
  table.AddRow({"recall@5", Fmt(recall5 / n_queries, 3)});
  table.AddRow({"per-sketch privacy",
                "eps = " + Fmt(options.sketcher.epsilon, 1) + " (pure)"});
  table.Print(std::cout);
  std::cout << "\nEvery number above was computed from released DP sketches\n"
               "only; the directory never saw a raw histogram. All " << n_queries
            << " queries were served concurrently by the engine.\n";
  return 0;
}
