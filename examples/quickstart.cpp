// Quickstart: two parties privately estimate the Euclidean distance
// between their vectors.
//
//   1. Both parties agree (publicly) on a projection seed and quality/
//      privacy parameters.
//   2. Each builds a PrivateSketcher and releases one sketch of its vector
//      (serialized bytes — the only thing that crosses the wire).
//   3. Anyone holding both sketches estimates ||x - y||^2, unbiasedly,
//      with a variance the library predicts in closed form.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <iostream>

#include "src/core/estimators.h"
#include "src/core/sketcher.h"
#include "src/linalg/vector_ops.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  // --- public agreement (out of band) ---
  SketcherConfig config;
  config.alpha = 0.2;               // (1 +- 0.2) distance distortion ...
  config.beta = 0.05;               // ... with probability >= 95%
  config.epsilon = 2.0;             // pure 2-DP per released sketch
  config.projection_seed = 0xC0FFEE;  // public; same for all parties
  const int64_t d = 10000;

  // --- party A ---
  auto sketcher_a = PrivateSketcher::Create(d, config);
  if (!sketcher_a.ok()) {
    std::cerr << sketcher_a.status() << "\n";
    return 1;
  }
  Rng data_rng(42);
  const std::vector<double> x = DenseGaussianVector(d, 1.0, &data_rng);
  const std::string wire_a =
      sketcher_a->Sketch(x, /*noise_seed=*/0xA11CE).Serialize();

  // --- party B (independent process; same public config) ---
  auto sketcher_b = PrivateSketcher::Create(d, config);
  const std::vector<double> y = DenseGaussianVector(d, 1.0, &data_rng);
  const std::string wire_b =
      sketcher_b->Sketch(y, /*noise_seed=*/0xB0B).Serialize();

  // --- aggregator: estimate from released bytes only ---
  const PrivateSketch sa = PrivateSketch::Deserialize(wire_a).value();
  const PrivateSketch sb = PrivateSketch::Deserialize(wire_b).value();
  const double est = EstimateSquaredDistance(sa, sb).value();

  const double truth = SquaredDistance(x, y);
  const double variance =
      sketcher_a->PredictVariance(truth, NormL4Pow4(Sub(x, y))).total();
  const double halfwidth = ChebyshevHalfWidth(variance, /*failure_prob=*/0.05);

  // The DP noise imposes an additive floor on resolvable distances
  // (cf. the Omega(1/eps) lower bound the paper cites): distances far
  // below it drown in noise regardless of k.
  const double noise_floor =
      std::sqrt(sketcher_a->PredictVariance(0.0, 0.0).total());

  std::cout << "construction     : " << sketcher_a->Describe() << "\n"
            << "sketch size      : " << sa.values().size() << " doubles ("
            << wire_a.size() << " bytes on the wire) vs input d = " << d << "\n"
            << "true ||x-y||^2   : " << truth << "\n"
            << "estimate         : " << est << "\n"
            << "95% Chebyshev CI : +- " << halfwidth << "\n"
            << "DP noise floor   : ~" << noise_floor
            << " (distances below this are indistinguishable)\n"
            << "privacy          : each release is "
            << sa.metadata().epsilon << "-DP (pure)\n";
  return 0;
}
