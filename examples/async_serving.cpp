// Async serving with priority lanes, tenant quotas, deadlines, cancellation
// and admission control — the dpjl::Engine facade end to end.
//
// One engine owns the sketcher, thread pool, sharded index and a bounded
// multi-lane request queue. Clients submit queries instead of blocking on
// them; each submission carries RequestOptions (priority lane, tenant,
// deadline budget). The example stages every outcome deterministically:
//
//   1. a burst of async queries, all served concurrently (OK),
//   2. a request whose deadline expires while it waits behind a stalled
//      serving lane (kDeadlineExceeded),
//   3. a request refused at admission because the queue is full
//      (kResourceExhausted),
//   4. interactive queries admitted AFTER a batch backfill that still
//      complete first (strict priority lanes),
//   5. a tenant refused at its quota while other tenants proceed
//      (kResourceExhausted, quota flavor),
//   6. a queued request cancelled in O(1) (kCancelled),
//
// shows that the async results are byte-identical to the sync calls — the
// engine adds scheduling, never different math — and ends with the
// EngineStats snapshot that accounts for every one of those outcomes.
//
// Build & run:  ./build/examples/async_serving

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 1024;
  const int64_t corpus = 64;

  EngineOptions options;
  options.sketcher.epsilon = 2.0;
  options.sketcher.projection_seed = 0xE7617E;
  options.threads = 2;          // shard-parallel scans
  options.serving_threads = 1;  // one lane, so the stalls below are total
  options.queue_capacity = 4;   // tiny on purpose, to show admission control
  options.tenant_quota = 2;     // per-tenant queued+in-flight bound
  auto engine_result = Engine::Create(d, options);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status() << "\n";
    return 1;
  }
  Engine& engine = **engine_result;
  std::cout << "engine: " << options.ToString() << "\n\n";

  // Publish the corpus in one shot: batch-sketched (per-item seeds derived
  // from one base seed; bit-identical at any thread count) and bulk-
  // ingested through AddBatch — one compatibility check for all 64 rows.
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int64_t i = 0; i < corpus; ++i) {
    rows.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  const auto sketches = engine.SketchBatch(rows, /*base_noise_seed=*/0xBA5E);
  DPJL_CHECK(sketches.ok(), sketches.status().ToString());
  std::vector<std::pair<std::string, PrivateSketch>> items;
  for (int64_t i = 0; i < corpus; ++i) {
    items.emplace_back("doc" + std::to_string(i),
                       (*sketches)[static_cast<size_t>(i)]);
  }
  DPJL_CHECK_OK(engine.InsertBatch(std::move(items)));

  const PrivateSketch probe = engine.Sketch(rows[3], /*noise_seed=*/0x9A);

  // 1. A burst of async queries; the sync result is the byte-exact oracle.
  // A well-behaved client keeps at most queue_capacity requests in flight
  // (reaping the oldest once the window is full), so none are refused no
  // matter how slowly the lane drains.
  const auto sync = engine.NearestNeighbors(probe, 5).value();
  const auto same_as_sync =
      [&sync](const std::vector<SketchIndex::Neighbor>& got) {
        return got.size() == sync.size() &&
               std::equal(got.begin(), got.end(), sync.begin(),
                          [](const SketchIndex::Neighbor& a,
                             const SketchIndex::Neighbor& b) {
                            return a.id == b.id &&
                                   a.squared_distance == b.squared_distance;
                          });
      };
  std::deque<EngineFuture<std::vector<SketchIndex::Neighbor>>> window;
  int identical = 0;
  for (int i = 0; i < 8; ++i) {
    if (static_cast<int64_t>(window.size()) >= options.queue_capacity) {
      const auto got = window.front().Get();
      window.pop_front();
      DPJL_CHECK(got.ok(), got.status().ToString());
      identical += same_as_sync(*got);
    }
    window.push_back(engine.SubmitQuery(probe, 5));
  }
  while (!window.empty()) {
    const auto got = window.front().Get();
    window.pop_front();
    DPJL_CHECK(got.ok(), got.status().ToString());
    identical += same_as_sync(*got);
  }
  std::cout << "burst of 8 async queries: " << identical
            << "/8 byte-identical to the sync call\n";

  // A batched submission amortizes one admission over many probes and is
  // byte-identical to submitting them individually.
  const auto batched = engine.SubmitQueryBatch({probe, probe}, 5).Get();
  DPJL_CHECK(batched.ok(), batched.status().ToString());
  std::cout << "one SubmitQueryBatch, 2 probes: "
            << (same_as_sync((*batched)[0]) && same_as_sync((*batched)[1])
                    ? "both"
                    : "NOT")
            << " byte-identical to the sync call\n";

  // Reusable gate: parks the single serving lane until released, so the
  // stages below control exactly when the queue drains.
  struct Gate {
    std::promise<void> entered;
    std::promise<void> release;
    EngineFuture<bool> task;
  };
  const auto stall = [&engine](Gate* gate) {
    std::shared_future<void> release(gate->release.get_future());
    gate->task = engine.SubmitTask([gate, release]() {
      gate->entered.set_value();
      release.wait();
      return Status::OK();
    });
    gate->entered.get_future().wait();  // the lane is now provably stalled
  };

  // 2 + 3. Stall the lane, then overfill the queue. The queued query with a
  // 1 ms deadline expires in place; the submissions beyond queue_capacity
  // are refused at the door. The no-deadline queued queries are served once
  // the lane reopens.
  Gate overload_gate;
  stall(&overload_gate);

  const auto doomed = engine.SubmitQuery(probe, 5, /*deadline_ms=*/1);
  std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> patient;
  for (int64_t i = 1; i < options.queue_capacity; ++i) {
    patient.push_back(engine.SubmitQuery(probe, 5, Engine::kNoDeadline));
  }
  const auto refused = engine.SubmitQuery(probe, 5);  // queue is full now
  std::cout << "over-capacity submission: " << refused.Get().status()
            << " (immediately, future ready = " << refused.Ready() << ")\n";

  // Let the doomed request's deadline lapse before reopening the lane.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  overload_gate.release.set_value();

  std::cout << "expired-in-queue request:  " << doomed.Get().status() << "\n";
  for (auto& future : patient) {
    DPJL_CHECK(future.Get().ok(), "patient query failed");
  }
  std::cout << "queued no-deadline queries: all " << patient.size()
            << " served after the lane reopened\n";
  DPJL_CHECK(overload_gate.task.Get().ok(), "gate task failed");

  // 4. Priority lanes: a batch backfill is admitted FIRST, interactive
  // queries after it — and the interactive ones still complete first,
  // because the scheduler pops lanes in strict priority order.
  Gate priority_gate;
  stall(&priority_gate);

  RequestOptions backfill;
  backfill.priority = Priority::kBatch;
  const auto backfill_a = engine.SubmitQuery(probe, 5, backfill);
  const auto backfill_b = engine.SubmitQuery(probe, 5, backfill);
  const auto interactive = engine.SubmitQuery(probe, 5);  // default lane
  priority_gate.release.set_value();
  DPJL_CHECK(interactive.Get().ok(), "interactive query failed");
  const bool jumped = !backfill_a.Ready() || !backfill_b.Ready();
  DPJL_CHECK(backfill_a.Get().ok(), "backfill query failed");
  DPJL_CHECK(backfill_b.Get().ok(), "backfill query failed");
  DPJL_CHECK(priority_gate.task.Get().ok(), "gate task failed");
  std::cout << "\ninteractive query vs 2-deep batch backfill: "
            << (jumped ? "completed before the backfill drained"
                       : "(backfill already drained)")
            << "\n";

  // 5. Tenant quotas: with tenant_quota = 2, tenant-a's third in-flight
  // request is refused at admission while tenant-b sails through.
  Gate quota_gate;
  stall(&quota_gate);
  RequestOptions tenant_a;
  tenant_a.tenant = "tenant-a";
  RequestOptions tenant_b;
  tenant_b.tenant = "tenant-b";
  const auto a1 = engine.SubmitQuery(probe, 5, tenant_a);
  const auto a2 = engine.SubmitQuery(probe, 5, tenant_a);
  const auto a3 = engine.SubmitQuery(probe, 5, tenant_a);
  const auto b1 = engine.SubmitQuery(probe, 5, tenant_b);
  // While the lane is stalled nothing can be served, so "not yet resolved"
  // is proof of admission (a refusal would have resolved immediately).
  std::cout << "tenant-a, 3rd request:     " << a3.Get().status() << "\n"
            << "tenant-b, same moment:     admitted = " << !b1.Ready()
            << " (served after the lane reopens)\n";

  // 6. Cancellation: a queued request is withdrawn in O(1); it never
  // occupies the lane and its future resolves with kCancelled.
  auto regretted = engine.SubmitQuery(probe, 5, tenant_b);
  const bool cancelled = regretted.Cancel();
  std::cout << "cancelled-in-queue request: " << regretted.Get().status()
            << " (Cancel returned " << cancelled << ")\n";

  quota_gate.release.set_value();
  DPJL_CHECK(a1.Get().ok() && a2.Get().ok() && b1.Get().ok(),
             "queued tenant queries failed");
  DPJL_CHECK(quota_gate.task.Get().ok(), "gate task failed");

  // Every staged outcome is visible in the stats snapshot. (Quota slots
  // release just after the future resolves; WaitIdle drains the backlog so
  // the snapshot shows the quiesced state.)
  engine.WaitIdle();
  std::cout << "\nengine stats after the run:\n" << engine.Stats().ToString();

  std::cout << "\nSame math, five outcomes: served, expired, refused (full\n"
               "queue or tenant quota), cancelled — the engine degrades by\n"
               "shedding load by lane and tenant, never by blocking callers.\n";
  return 0;
}
