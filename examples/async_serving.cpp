// Async serving with deadlines and admission control — the dpjl::Engine
// facade end to end.
//
// One engine owns the sketcher, thread pool, sharded index and a bounded
// request queue. Clients submit queries instead of blocking on them; each
// request carries a deadline, and a full queue refuses new work with
// kResourceExhausted instead of building an unbounded backlog. The example
// stages all three outcomes deterministically:
//
//   1. a burst of async queries, all served concurrently (OK),
//   2. a request whose deadline expires while it waits behind a stalled
//      serving lane (kDeadlineExceeded),
//   3. a request refused at admission because the queue is full
//      (kResourceExhausted)
//
// and shows that the async results are byte-identical to the sync calls —
// the engine adds scheduling, never different math.
//
// Build & run:  ./build/examples/async_serving

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 1024;
  const int64_t corpus = 64;

  EngineOptions options;
  options.sketcher.epsilon = 2.0;
  options.sketcher.projection_seed = 0xE7617E;
  options.threads = 2;          // shard-parallel scans
  options.serving_threads = 1;  // one lane, so the stall below is total
  options.queue_capacity = 4;   // tiny on purpose, to show admission control
  auto engine_result = Engine::Create(d, options);
  if (!engine_result.ok()) {
    std::cerr << engine_result.status() << "\n";
    return 1;
  }
  Engine& engine = **engine_result;
  std::cout << "engine: " << options.ToString() << "\n\n";

  // Publish the corpus through the batch path (per-item seeds derived from
  // one base seed; bit-identical at any thread count).
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int64_t i = 0; i < corpus; ++i) {
    rows.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  const auto sketches = engine.SketchBatch(rows, /*base_noise_seed=*/0xBA5E);
  DPJL_CHECK(sketches.ok(), sketches.status().ToString());
  for (int64_t i = 0; i < corpus; ++i) {
    DPJL_CHECK_OK(engine.Insert("doc" + std::to_string(i),
                                (*sketches)[static_cast<size_t>(i)]));
  }

  const PrivateSketch probe = engine.Sketch(rows[3], /*noise_seed=*/0x9A);

  // 1. A burst of async queries; the sync result is the byte-exact oracle.
  // A well-behaved client keeps at most queue_capacity requests in flight
  // (reaping the oldest once the window is full), so none are refused no
  // matter how slowly the lane drains.
  const auto sync = engine.NearestNeighbors(probe, 5).value();
  const auto same_as_sync =
      [&sync](const std::vector<SketchIndex::Neighbor>& got) {
        return got.size() == sync.size() &&
               std::equal(got.begin(), got.end(), sync.begin(),
                          [](const SketchIndex::Neighbor& a,
                             const SketchIndex::Neighbor& b) {
                            return a.id == b.id &&
                                   a.squared_distance == b.squared_distance;
                          });
      };
  std::deque<EngineFuture<std::vector<SketchIndex::Neighbor>>> window;
  int identical = 0;
  for (int i = 0; i < 8; ++i) {
    if (static_cast<int64_t>(window.size()) >= options.queue_capacity) {
      const auto got = window.front().Get();
      window.pop_front();
      DPJL_CHECK(got.ok(), got.status().ToString());
      identical += same_as_sync(*got);
    }
    window.push_back(engine.SubmitQuery(probe, 5));
  }
  while (!window.empty()) {
    const auto got = window.front().Get();
    window.pop_front();
    DPJL_CHECK(got.ok(), got.status().ToString());
    identical += same_as_sync(*got);
  }
  std::cout << "burst of 8 async queries: " << identical
            << "/8 byte-identical to the sync call\n";

  // 2 + 3. Stall the single serving lane with a gate task, then overfill
  // the queue. The queued query with a 1 ms deadline expires in place; the
  // submissions beyond queue_capacity are refused at the door. The
  // no-deadline queued queries are served once the lane reopens.
  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::shared_future<void> release(gate_release.get_future());
  const auto gate = engine.SubmitTask([&gate_entered, release]() {
    gate_entered.set_value();
    release.wait();
    return Status::OK();
  });
  gate_entered.get_future().wait();  // the lane is now provably stalled

  const auto doomed = engine.SubmitQuery(probe, 5, /*deadline_ms=*/1);
  std::vector<EngineFuture<std::vector<SketchIndex::Neighbor>>> patient;
  for (int64_t i = 1; i < options.queue_capacity; ++i) {
    patient.push_back(engine.SubmitQuery(probe, 5, Engine::kNoDeadline));
  }
  const auto refused = engine.SubmitQuery(probe, 5);  // queue is full now
  std::cout << "over-capacity submission: " << refused.Get().status()
            << " (immediately, future ready = " << refused.Ready() << ")\n";

  // Let the doomed request's deadline lapse before reopening the lane.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate_release.set_value();

  std::cout << "expired-in-queue request:  " << doomed.Get().status() << "\n";
  for (auto& future : patient) {
    DPJL_CHECK(future.Get().ok(), "patient query failed");
  }
  std::cout << "queued no-deadline queries: all " << patient.size()
            << " served after the lane reopened\n";
  DPJL_CHECK(gate.Get().ok(), "gate task failed");

  std::cout << "\nSame math, three outcomes: served, expired, refused — the\n"
               "engine degrades by shedding load, never by blocking callers.\n";
  return 0;
}
