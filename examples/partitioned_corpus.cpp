// Partitioned persistence end to end: independent workers build shards of
// one corpus, a coordinator merges them all-or-nothing against the shard
// manifest, and a serving engine answers queries directly from the
// partition snapshots — byte-identical to the merged index.
//
// The flow mirrors the distributed setting the paper motivates: released
// DP sketches are public artifacts, so an untrusted aggregator can hold
// any subset of the partitions and still serve exact-merge results.
//
//   1. three "workers" each sketch and index a slice of the corpus,
//   2. each worker exports its slice as a partition snapshot (the bytes a
//      real deployment would ship to object storage),
//   3. the coordinator re-exports a manifest over the full corpus and
//      merges the partitions with checksum/fingerprint verification,
//   4. a serving engine attaches the partition snapshots and answers a
//      nearest-neighbor query, proving the scatter-gather result equals
//      the merged index's answer entry for entry.
//
// Build & run:  ./build/examples/partitioned_corpus

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/generators.h"

int main() {
  using namespace dpjl;

  const int64_t d = 512;
  const int64_t corpus_size = 60;
  const int workers = 3;

  EngineOptions options;
  // Low-noise budget so the query ranking below is visibly sensible; the
  // byte-identical merge/serve guarantees hold at any epsilon.
  options.sketcher.epsilon = 30.0;
  options.sketcher.projection_seed = 0xE13;  // public, shared by all workers
  options.threads = 2;

  // --- 1. one monolithic build (the reference), then its partition export.
  // In a real deployment each worker builds only its slice; exporting from
  // the reference keeps this example compact while exercising the same
  // code path, because ExportPartitions writes exactly the per-worker
  // snapshot a slice build would produce.
  auto reference = Engine::Create(d, options);
  if (!reference.ok()) {
    std::cerr << reference.status() << "\n";
    return 1;
  }
  Rng rng(0xE13);
  std::vector<std::vector<double>> vectors;
  for (int64_t i = 0; i < corpus_size; ++i) {
    vectors.push_back(DenseGaussianVector(d, 1.0, &rng));
  }
  auto sketches = (*reference)->SketchBatch(vectors, /*base_noise_seed=*/777);
  if (!sketches.ok()) {
    std::cerr << sketches.status() << "\n";
    return 1;
  }
  std::vector<std::pair<std::string, PrivateSketch>> items;
  for (int64_t i = 0; i < corpus_size; ++i) {
    items.emplace_back("doc" + std::to_string(i),
                       std::move((*sketches)[static_cast<size_t>(i)]));
  }
  if (auto added = (*reference)->InsertBatch(std::move(items)); !added.ok()) {
    std::cerr << added << "\n";
    return 1;
  }

  auto monolithic =
      SketchIndex::Deserialize((*reference)->SerializeIndex());
  if (!monolithic.ok()) {
    std::cerr << monolithic.status() << "\n";
    return 1;
  }

  // --- 2. export: one independently loadable snapshot per worker, plus
  // the manifest that makes the set mergeable.
  auto exported = monolithic->ExportPartitions(workers);
  if (!exported.ok()) {
    std::cerr << exported.status() << "\n";
    return 1;
  }
  std::cout << "exported " << workers << " partitions; manifest fingerprint "
            << std::hex << exported->manifest.fingerprint << std::dec << "\n";
  for (size_t p = 0; p < exported->partitions.size(); ++p) {
    std::cout << "  partition " << p << ": "
              << exported->manifest.partitions[p].count << " sketches, "
              << exported->partitions[p].size() << " bytes ["
              << exported->manifest.partitions[p].first_id << " .. "
              << exported->manifest.partitions[p].last_id << "]\n";
  }

  // --- 3. all-or-nothing merge, verified against the manifest. The merged
  // snapshot is byte-identical to the monolithic one.
  auto merged =
      SketchIndex::FromPartitions(exported->manifest, exported->partitions);
  if (!merged.ok()) {
    std::cerr << merged.status() << "\n";
    return 1;
  }
  const bool bytes_identical = merged->Serialize() == monolithic->Serialize();
  std::cout << "merge: " << merged->size() << " sketches, snapshot "
            << (bytes_identical ? "byte-identical" : "DIFFERS") << "\n";
  if (!bytes_identical) return 1;

  // A tampered partition is refused by its checksum — corruption is an
  // error status, never a half-merged corpus.
  auto tampered = exported->partitions;
  tampered[1][tampered[1].size() / 2] ^= 0x40;
  auto refused = SketchIndex::FromPartitions(exported->manifest, tampered);
  std::cout << "tampered partition refused: "
            << (refused.ok() ? "NO (bug!)" : refused.status().ToString())
            << "\n";
  if (refused.ok()) return 1;

  // --- 4. partitioned serving: attach the snapshots, query, compare.
  auto server = Engine::FromIndex(SketchIndex(), options);
  if (!server.ok()) {
    std::cerr << server.status() << "\n";
    return 1;
  }
  for (const std::string& blob : exported->partitions) {
    auto part = SketchIndex::Deserialize(blob);
    if (!part.ok()) {
      std::cerr << part.status() << "\n";
      return 1;
    }
    if (auto handle = (*server)->AttachPartition(std::move(part).value());
        !handle.ok()) {
      std::cerr << handle.status() << "\n";
      return 1;
    }
  }

  const PrivateSketch probe = (*reference)->Sketch(vectors[7], 999);
  auto scattered = (*server)->SubmitQuery(probe, 5).Get();
  auto direct = merged->NearestNeighbors(probe, 5);
  if (!scattered.ok() || !direct.ok()) {
    std::cerr << "query failed\n";
    return 1;
  }
  std::cout << "scatter-gather top-5 over " << (*server)->num_partitions()
            << " partitions (vs merged index):\n";
  bool identical = scattered->size() == direct->size();
  for (size_t i = 0; i < scattered->size(); ++i) {
    const auto& got = (*scattered)[i];
    identical = identical && got.id == (*direct)[i].id &&
                got.squared_distance == (*direct)[i].squared_distance;
    std::cout << "  " << got.id << "\t" << got.squared_distance << "\n";
  }
  std::cout << "scatter-gather vs merged: "
            << (identical ? "byte-identical" : "DIFFERS") << "\n";
  return identical ? 0 : 1;
}
